package core

import (
	"testing"

	"xgftsim/internal/topology"
)

// TestSelectorPrefixNesting is the property test behind the multi-K
// evaluation pipeline: for every scheme, seed and topology, the path
// list a pair gets at limit K must be a prefix of its list at K+1
// (through the same per-pair RNG streams Routing derives). The
// topologies cover both RandomK draw regimes (X <= 16 dense
// Fisher-Yates, X > 16 rejection + pool tail) and the regime's
// internal n <= X/4 / n > X/4 switch point.
func TestSelectorPrefixNesting(t *testing.T) {
	topos := []*topology.Topology{
		topology.MustNew(2, []int{4, 8}, []int{1, 4}),       // X = 4
		topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4}), // X = 16: dense boundary
		topology.MustNew(2, []int{5, 20}, []int{1, 18}),     // X = 18: sparse + hybrid tail
	}
	seeds := []int64{0, 1, 12345}
	for _, tp := range topos {
		for _, name := range SelectorNames() {
			sel, err := SelectorByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if !PrefixNested(sel) {
				t.Fatalf("built-in selector %s must report PrefixNested", name)
			}
			for _, seed := range seeds {
				n := tp.NumProcessors()
				pairs := [][2]int{{0, n - 1}, {1, n / 2}, {n - 1, 0}, {n / 3, n/3 + 1}}
				for _, pr := range pairs {
					src, dst := pr[0], pr[1]
					if src == dst {
						continue
					}
					x := tp.WProd(tp.NCALevel(src, dst))
					var prev []int
					for k := 1; k <= x+2; k++ {
						got := NewRouting(tp, sel, k, seed).Paths(src, dst)
						if len(got) < len(prev) {
							t.Fatalf("%s K=%d on %s pair (%d,%d): %d paths, fewer than K=%d's %d",
								name, k, tp, src, dst, len(got), k-1, len(prev))
						}
						for i := range prev {
							if got[i] != prev[i] {
								t.Fatalf("%s seed %d on %s pair (%d,%d): Select(%d)=%v is not a prefix of Select(%d)=%v",
									name, seed, tp, src, dst, k-1, prev, k, got)
							}
						}
						seen := make(map[int]bool, len(got))
						for _, p := range got {
							if p < 0 || p >= x || seen[p] {
								t.Fatalf("%s K=%d pair (%d,%d): invalid or duplicate path %d in %v", name, k, src, dst, p, got)
							}
							seen[p] = true
						}
						prev = got
					}
				}
			}
		}
	}
}
