package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"xgftsim/internal/topology"
)

// blockTestTopo is large enough that tiny segment sizes force many
// segments through the streaming machinery.
func blockTestTopo(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
}

// TestBlockCompiledMatchesCompiled pins the tentpole contract: every
// pair's CSR row served from a streamed segment is bit-identical to
// the fully compiled table's — same path indices, same concatenated
// links, same path-major layout.
func TestBlockCompiledMatchesCompiled(t *testing.T) {
	topo := blockTestTopo(t)
	n := topo.NumProcessors()
	for _, tc := range []struct {
		name string
		sel  Selector
		k    int
	}{
		{"disjoint-k4", Disjoint{}, 4},
		{"random-k4", RandomK{}, 4},
		{"dmodk-k1", DModK{}, 1},
		{"smodk-k1", SModK{}, 1},
		{"shift1-k3", Shift1{}, 3},
		{"random-single", RandomSingle{}, 1},
		{"umulti", UMulti{}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRouting(topo, tc.sel, tc.k, 7)
			c, err := CompileRouting(r, 1<<30)
			if err != nil {
				t.Fatalf("CompileRouting: %v", err)
			}
			// ~64 KiB segments: forces well over one segment for 128
			// sources.
			b := NewBlockCompiledRouting(r, BlockOptions{SegmentBytes: 64 << 10})
			defer b.Close()
			if b.NumSegments() < 2 {
				t.Fatalf("want multiple segments, got %d", b.NumSegments())
			}
			for g := 0; g < b.NumSegments(); g++ {
				seg, err := b.Segment(g)
				if err != nil {
					t.Fatalf("Segment(%d): %v", g, err)
				}
				lo, hi := b.SegmentSpan(g)
				if seg.SrcLo() != lo || seg.SrcHi() != hi {
					t.Fatalf("segment %d span (%d,%d) != planned (%d,%d)", g, seg.SrcLo(), seg.SrcHi(), lo, hi)
				}
				for src := lo; src < hi; src++ {
					for dst := 0; dst < n; dst++ {
						comparePair(t, c, seg, src, dst)
					}
				}
				b.Release(seg)
			}
		})
	}
}

func comparePair(t *testing.T, c *CompiledRouting, seg *RoutingSegment, src, dst int) {
	t.Helper()
	wantIdx := c.PathIndices(src, dst)
	gotIdx := seg.PathIndices(src, dst)
	if !equalInt32(wantIdx, gotIdx) {
		t.Fatalf("pair (%d,%d): path indices %v != compiled %v", src, dst, gotIdx, wantIdx)
	}
	wantLinks, wantNP := c.PairLinks(src, dst)
	gotLinks, gotNP := seg.PairLinks(src, dst)
	if wantNP != gotNP || !equalInt32(wantLinks, gotLinks) {
		t.Fatalf("pair (%d,%d): links (np=%d) %v != compiled (np=%d) %v", src, dst, gotNP, gotLinks, wantNP, wantLinks)
	}
	wl, wn, ws := c.PairPathLinks(src, dst)
	gl, gn, gs := seg.PairPathLinks(src, dst)
	if wn != gn || ws != gs || !equalInt32(wl, gl) {
		t.Fatalf("pair (%d,%d): path-major links differ", src, dst)
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBlockModeWorksWhereCompileRefuses pins the budget boundary: at a
// budget below the full table estimate CompileRouting errors, while
// block mode walks every segment under the same budget.
func TestBlockModeWorksWhereCompileRefuses(t *testing.T) {
	topo := blockTestTopo(t)
	r := NewRouting(topo, Disjoint{}, 4, 0)
	budget := CompiledBytes(r) - 1
	if _, err := CompileRouting(r, budget); err == nil {
		t.Fatalf("CompileRouting fit a budget below its own estimate")
	}
	b := NewBlockCompiledRouting(r, BlockOptions{SegmentBytes: budget / 8, ResidentBytes: budget})
	defer b.Close()
	var live int64
	for g := 0; g < b.NumSegments(); g++ {
		seg, err := b.Segment(g)
		if err != nil {
			t.Fatalf("Segment(%d): %v", g, err)
		}
		if seg.Bytes() > budget {
			t.Fatalf("segment %d is %d bytes, over the %d budget", g, seg.Bytes(), budget)
		}
		if live = seg.Bytes(); live > budget {
			t.Fatalf("live segment bytes %d exceed budget %d", live, budget)
		}
		b.Release(seg)
	}
}

// TestSegmentCacheRoundTrip pins the cache lifecycle: a cold table
// compiles and writes every segment, a second table over the same key
// maps them back byte-identically, and a different seed (a different
// key) misses.
func TestSegmentCacheRoundTrip(t *testing.T) {
	topo := blockTestTopo(t)
	dir := t.TempDir()
	cache, err := OpenSegmentCache(dir)
	if err != nil {
		t.Fatalf("OpenSegmentCache: %v", err)
	}
	r := NewRouting(topo, RandomK{}, 4, 42)
	opts := BlockOptions{SegmentBytes: 128 << 10, Cache: cache}

	hit0, miss0, wr0 := met.segmentsCacheHit.Value(), met.segmentsCacheMiss.Value(), met.segmentsCacheWrite.Value()
	cold := NewBlockCompiledRouting(r, opts)
	coldSegs := make([][]int32, cold.NumSegments())
	for g := 0; g < cold.NumSegments(); g++ {
		seg, err := cold.Segment(g)
		if err != nil {
			t.Fatalf("cold Segment(%d): %v", g, err)
		}
		coldSegs[g] = append([]int32(nil), seg.links...)
		cold.Release(seg)
	}
	cold.Close()
	if got := met.segmentsCacheMiss.Value() - miss0; got != int64(len(coldSegs)) {
		t.Fatalf("cold run: %d cache misses, want %d", got, len(coldSegs))
	}
	if got := met.segmentsCacheWrite.Value() - wr0; got != int64(len(coldSegs)) {
		t.Fatalf("cold run: %d cache writes, want %d", got, len(coldSegs))
	}

	warm := NewBlockCompiledRouting(NewRouting(topo, RandomK{}, 4, 42), opts)
	defer warm.Close()
	for g := 0; g < warm.NumSegments(); g++ {
		seg, err := warm.Segment(g)
		if err != nil {
			t.Fatalf("warm Segment(%d): %v", g, err)
		}
		if !equalInt32(seg.links, coldSegs[g]) {
			t.Fatalf("warm segment %d differs from cold compile", g)
		}
		warm.Release(seg)
	}
	if got := met.segmentsCacheHit.Value() - hit0; got != int64(len(coldSegs)) {
		t.Fatalf("warm run: %d cache hits, want %d", got, len(coldSegs))
	}

	// A different seed is a different key: all misses, no false hits.
	missBefore := met.segmentsCacheMiss.Value()
	other := NewBlockCompiledRouting(NewRouting(topo, RandomK{}, 4, 43), opts)
	defer other.Close()
	if seg, err := other.Segment(0); err != nil {
		t.Fatalf("other Segment(0): %v", err)
	} else {
		other.Release(seg)
	}
	if got := met.segmentsCacheMiss.Value() - missBefore; got != 1 {
		t.Fatalf("different-seed lookup: %d misses, want 1", got)
	}
}

// TestSegmentCacheRejectsCorruptFiles pins the validation path: a
// truncated or bit-flipped cache file must read as a miss and be
// recompiled, never served.
func TestSegmentCacheRejectsCorruptFiles(t *testing.T) {
	topo := blockTestTopo(t)
	dir := t.TempDir()
	cache, err := OpenSegmentCache(dir)
	if err != nil {
		t.Fatalf("OpenSegmentCache: %v", err)
	}
	opts := BlockOptions{SegmentBytes: 128 << 10, Cache: cache}
	seed := NewBlockCompiledRouting(NewRouting(topo, Disjoint{}, 4, 0), opts)
	seg, err := seed.Segment(0)
	if err != nil {
		t.Fatalf("Segment(0): %v", err)
	}
	want := append([]int32(nil), seg.links...)
	seed.Release(seg)
	seed.Close()

	files, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cache files written (err=%v)", err)
	}
	for _, corrupt := range []func(path string) error{
		func(path string) error { // truncate
			st, err := os.Stat(path)
			if err != nil {
				return err
			}
			return os.Truncate(path, st.Size()-4)
		},
		func(path string) error { // flip a magic byte
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			data[0] ^= 0xff
			return os.WriteFile(path, data, 0o644)
		},
	} {
		if err := corrupt(files[0]); err != nil {
			t.Fatalf("corrupting %s: %v", files[0], err)
		}
		missBefore := met.segmentsCacheMiss.Value()
		b := NewBlockCompiledRouting(NewRouting(topo, Disjoint{}, 4, 0), opts)
		seg, err := b.Segment(0)
		if err != nil {
			t.Fatalf("Segment(0) after corruption: %v", err)
		}
		if !equalInt32(seg.links, want) {
			t.Fatalf("corrupted cache produced wrong links")
		}
		if met.segmentsCacheMiss.Value() == missBefore {
			t.Fatalf("corrupted file was served as a hit")
		}
		b.Release(seg)
		b.Close()
	}
}

// TestPlanBlocksCoversAllSources checks the segment plan partitions
// [0, n) exactly for a spread of segment sizes.
func TestPlanBlocksCoversAllSources(t *testing.T) {
	topo := blockTestTopo(t)
	r := NewRouting(topo, Disjoint{}, 4, 0)
	n := topo.NumProcessors()
	for _, segBytes := range []int64{1, 32 << 10, 1 << 20, 1 << 40} {
		t.Run(fmt.Sprintf("seg=%d", segBytes), func(t *testing.T) {
			b := NewBlockCompiledRouting(r, BlockOptions{SegmentBytes: segBytes})
			defer b.Close()
			covered := 0
			for g := 0; g < b.NumSegments(); g++ {
				lo, hi := b.SegmentSpan(g)
				if lo != covered {
					t.Fatalf("segment %d starts at %d, want %d", g, lo, covered)
				}
				if hi <= lo {
					t.Fatalf("segment %d empty: [%d,%d)", g, lo, hi)
				}
				covered = hi
			}
			if covered != n {
				t.Fatalf("segments cover [0,%d), want [0,%d)", covered, n)
			}
			for src := 0; src < n; src++ {
				g := b.SegmentFor(src)
				lo, hi := b.SegmentSpan(g)
				if src < lo || src >= hi {
					t.Fatalf("SegmentFor(%d)=%d spans [%d,%d)", src, g, lo, hi)
				}
			}
		})
	}
}

// TestBlockResidentPoolReuse checks that a released segment under the
// resident bound is reused (no recompile) and that Close rejects
// further fetches.
func TestBlockResidentPoolReuse(t *testing.T) {
	topo := blockTestTopo(t)
	r := NewRouting(topo, Disjoint{}, 4, 0)
	b := NewBlockCompiledRouting(r, BlockOptions{SegmentBytes: 128 << 10, ResidentBytes: 1 << 30})
	compiled0 := met.segmentsCompiled.Value()
	seg, err := b.Segment(0)
	if err != nil {
		t.Fatalf("Segment(0): %v", err)
	}
	b.Release(seg)
	again, err := b.Segment(0)
	if err != nil {
		t.Fatalf("Segment(0) again: %v", err)
	}
	if met.segmentsCompiled.Value()-compiled0 != 1 {
		t.Fatalf("pooled segment was recompiled")
	}
	b.Release(again)
	b.Close()
	if _, err := b.Segment(0); err == nil {
		t.Fatalf("Segment after Close succeeded")
	}
}
