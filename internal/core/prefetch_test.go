package core

import (
	"os"
	"path/filepath"
	"testing"
)

// TestPrefetchMatchesSync pins the pipeline's correctness: segments
// materialized by the prefetch workers are bit-identical to synchronous
// compiles, and at least some fetches are actually served by the
// workers (the test issues every prefetch before touching Segment).
func TestPrefetchMatchesSync(t *testing.T) {
	topo := blockTestTopo(t)
	r := NewRouting(topo, Disjoint{}, 4, 0)
	sync := NewBlockCompiledRouting(r, BlockOptions{SegmentBytes: 64 << 10})
	defer sync.Close()
	b := NewBlockCompiledRouting(r, BlockOptions{SegmentBytes: 64 << 10, Prefetch: 4})
	defer b.Close()
	if b.NumSegments() < 2 {
		t.Fatalf("want multiple segments, got %d", b.NumSegments())
	}
	pref0 := met.segmentsPrefetched.Value()
	for g := 0; g < b.NumSegments(); g++ {
		b.Prefetch(g)
	}
	for g := 0; g < b.NumSegments(); g++ {
		want, err := sync.Segment(g)
		if err != nil {
			t.Fatalf("sync Segment(%d): %v", g, err)
		}
		got, err := b.Segment(g)
		if err != nil {
			t.Fatalf("prefetched Segment(%d): %v", g, err)
		}
		if !equalInt32(got.links, want.links) || !equalInt32(got.pathIdx, want.pathIdx) {
			t.Fatalf("prefetched segment %d differs from sync compile", g)
		}
		sync.Release(want)
		b.Release(got)
	}
	if met.segmentsPrefetched.Value() == pref0 {
		t.Fatalf("no segment was served by the prefetch workers")
	}
}

// TestPrefetchRespectsResidentBudget pins admission: with a budget that
// fits roughly one segment, prefetching every segment must stall (not
// queue) the overflow, and the pool never exceeds the budget.
func TestPrefetchRespectsResidentBudget(t *testing.T) {
	topo := blockTestTopo(t)
	r := NewRouting(topo, Disjoint{}, 4, 0)
	budget := perSourceBytes(r)*int64(topo.NumProcessors()/8) + 64
	b := NewBlockCompiledRouting(r, BlockOptions{SegmentBytes: 64 << 10, ResidentBytes: budget, Prefetch: 2})
	defer b.Close()
	stalls0 := met.prefetchStalls.Value()
	for g := 0; g < b.NumSegments(); g++ {
		b.Prefetch(g)
	}
	if met.prefetchStalls.Value() == stalls0 {
		t.Fatalf("over-budget prefetch burst produced no stalls")
	}
	if got := b.ResidentBytes(); got > budget {
		t.Fatalf("resident pool %d exceeds budget %d", got, budget)
	}
	// Stalled segments still materialize synchronously.
	for g := 0; g < b.NumSegments(); g++ {
		seg, err := b.Segment(g)
		if err != nil {
			t.Fatalf("Segment(%d): %v", g, err)
		}
		b.Release(seg)
	}
}

// TestPrefetchWarmPoolAllocFree pins the admission fast path: asking to
// prefetch a segment that is already resident (the steady state of an
// evaluator running ahead of itself) allocates nothing.
func TestPrefetchWarmPoolAllocFree(t *testing.T) {
	topo := blockTestTopo(t)
	r := NewRouting(topo, Disjoint{}, 4, 0)
	b := NewBlockCompiledRouting(r, BlockOptions{SegmentBytes: 64 << 10, Prefetch: 2})
	defer b.Close()
	seg, err := b.Segment(0)
	if err != nil {
		t.Fatalf("Segment(0): %v", err)
	}
	b.Release(seg) // segment 0 now pooled
	if allocs := testing.AllocsPerRun(100, func() { b.Prefetch(0) }); allocs != 0 {
		t.Fatalf("warm-pool Prefetch allocates %v objects per call, want 0", allocs)
	}
}

// TestPrefetchCloseUnblocksWaiters pins shutdown: Close while prefetches
// are admitted must wake any Segment call waiting on them and leave the
// table cleanly rejecting further fetches.
func TestPrefetchCloseUnblocksWaiters(t *testing.T) {
	topo := blockTestTopo(t)
	r := NewRouting(topo, Disjoint{}, 4, 0)
	b := NewBlockCompiledRouting(r, BlockOptions{SegmentBytes: 64 << 10, Prefetch: 1})
	for g := 0; g < b.NumSegments(); g++ {
		b.Prefetch(g)
	}
	b.Close()
	if _, err := b.Segment(0); err == nil {
		t.Fatalf("Segment after Close succeeded")
	}
}

// TestSegmentCacheEviction pins the size cap: writes beyond MaxBytes
// evict oldest records first, and a segment mapped before its record
// was evicted stays fully readable (the unlink only removes the name).
func TestSegmentCacheEviction(t *testing.T) {
	topo := blockTestTopo(t)
	dir := t.TempDir()
	cache, err := OpenSegmentCache(dir)
	if err != nil {
		t.Fatalf("OpenSegmentCache: %v", err)
	}
	r := NewRouting(topo, Disjoint{}, 4, 0)
	seed := NewBlockCompiledRouting(r, BlockOptions{SegmentBytes: 128 << 10, Cache: cache})
	segBytes := int64(0)
	for g := 0; g < seed.NumSegments(); g++ {
		seg, err := seed.Segment(g)
		if err != nil {
			t.Fatalf("Segment(%d): %v", g, err)
		}
		if segBytes == 0 {
			segBytes = seg.Bytes()
		}
		seed.Release(seg)
	}
	numSegs := seed.NumSegments()
	seed.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(files) != numSegs {
		t.Fatalf("%d cache files for %d segments", len(files), numSegs)
	}

	// Map segment 0 from the cache, then cap the cache so the next write
	// evicts everything old — including segment 0's record.
	warm := NewBlockCompiledRouting(r, BlockOptions{SegmentBytes: 128 << 10, Cache: cache})
	defer warm.Close()
	held, err := warm.Segment(0)
	if err != nil {
		t.Fatalf("warm Segment(0): %v", err)
	}
	wantLinks := append([]int32(nil), held.links...)

	cache.SetMaxBytes(2 * segBytes)
	other := NewBlockCompiledRouting(NewRouting(topo, Disjoint{}, 4, 1), BlockOptions{SegmentBytes: 128 << 10, Cache: cache})
	if seg, err := other.Segment(0); err != nil {
		t.Fatalf("other Segment(0): %v", err)
	} else {
		other.Release(seg)
	}
	other.Close()

	var total int64
	left, _ := filepath.Glob(filepath.Join(dir, "*.seg*"))
	for _, f := range left {
		st, err := os.Stat(f)
		if err == nil {
			total += st.Size()
		}
	}
	if len(left) >= numSegs+1 {
		t.Fatalf("no records evicted: %d files remain", len(left))
	}
	if total > 2*segBytes+4096 {
		t.Fatalf("cache holds %d bytes after eviction, cap %d", total, 2*segBytes)
	}
	// The held (possibly mmap-backed) segment survived its record's
	// eviction: the data reads back intact.
	if !equalInt32(held.links, wantLinks) {
		t.Fatalf("held segment changed after its cache record was evicted")
	}
	warm.Release(held)
}

// TestSegmentCacheHeapFallback runs the cache round trip through the
// non-mmap path (mmap_other.go's behavior) regardless of platform.
func TestSegmentCacheHeapFallback(t *testing.T) {
	forceHeapSegments.Store(true)
	defer forceHeapSegments.Store(false)
	topo := blockTestTopo(t)
	dir := t.TempDir()
	cache, err := OpenSegmentCache(dir)
	if err != nil {
		t.Fatalf("OpenSegmentCache: %v", err)
	}
	r := NewRouting(topo, Disjoint{}, 4, 0)
	opts := BlockOptions{SegmentBytes: 128 << 10, Cache: cache}
	cold := NewBlockCompiledRouting(r, opts)
	want := make([][]int32, cold.NumSegments())
	for g := 0; g < cold.NumSegments(); g++ {
		seg, err := cold.Segment(g)
		if err != nil {
			t.Fatalf("cold Segment(%d): %v", g, err)
		}
		want[g] = append([]int32(nil), seg.links...)
		cold.Release(seg)
	}
	cold.Close()

	hit0 := met.segmentsCacheHit.Value()
	warm := NewBlockCompiledRouting(r, opts)
	defer warm.Close()
	for g := 0; g < warm.NumSegments(); g++ {
		seg, err := warm.Segment(g)
		if err != nil {
			t.Fatalf("warm Segment(%d): %v", g, err)
		}
		if seg.Mapped() {
			t.Fatalf("heap fallback produced a mapped segment")
		}
		if !equalInt32(seg.links, want[g]) {
			t.Fatalf("heap-loaded segment %d differs from compile", g)
		}
		warm.Release(seg)
	}
	if met.segmentsCacheHit.Value()-hit0 != int64(warm.NumSegments()) {
		t.Fatalf("heap fallback missed the cache")
	}
}
