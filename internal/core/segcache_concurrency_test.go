package core

import (
	"path/filepath"
	"sync"
	"testing"
)

// TestSegmentCacheTempFileUnique: concurrent writers each get an
// exclusively-owned temp file — no two goroutines ever share a scratch
// path, so interleaved segment writes cannot corrupt each other.
func TestSegmentCacheTempFileUnique(t *testing.T) {
	cache, err := OpenSegmentCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 50
	var mu sync.Mutex
	seen := make(map[string]bool, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				f, err := cache.tempFile()
				if err != nil {
					t.Error(err)
					return
				}
				name := f.Name()
				f.Close()
				mu.Lock()
				if seen[name] {
					t.Errorf("temp name %s handed out twice", name)
				}
				seen[name] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*perWorker {
		t.Errorf("%d unique temp files, want %d", len(seen), workers*perWorker)
	}
}

// TestSegmentCacheConcurrentWriters: several tables over the same key
// compile and persist segments concurrently into one shared cache
// directory. The benign store race (each writer owns its temp file,
// last rename wins) must leave every cached segment byte-identical to
// a clean compile and no temp residue behind.
func TestSegmentCacheConcurrentWriters(t *testing.T) {
	topo := blockTestTopo(t)
	dir := t.TempDir()
	cache, err := OpenSegmentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := BlockOptions{SegmentBytes: 128 << 10, Cache: cache}

	// Reference compile, no cache.
	ref := NewBlockCompiledRouting(NewRouting(topo, RandomK{}, 4, 42), BlockOptions{SegmentBytes: 128 << 10})
	refSegs := make([][]int32, ref.NumSegments())
	for g := 0; g < ref.NumSegments(); g++ {
		seg, err := ref.Segment(g)
		if err != nil {
			t.Fatal(err)
		}
		refSegs[g] = append([]int32(nil), seg.links...)
		ref.Release(seg)
	}
	ref.Close()

	const writers = 6
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := NewBlockCompiledRouting(NewRouting(topo, RandomK{}, 4, 42), opts)
			defer b.Close()
			for g := 0; g < b.NumSegments(); g++ {
				seg, err := b.Segment(g)
				if err != nil {
					t.Errorf("segment %d: %v", g, err)
					return
				}
				if !equalInt32(seg.links, refSegs[g]) {
					t.Errorf("segment %d differs from reference compile", g)
				}
				b.Release(seg)
			}
		}()
	}
	wg.Wait()

	// All temp files were either renamed into place or removed.
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Errorf("temp residue after concurrent writers: %v", tmps)
	}

	// A cold reader maps what the racers persisted, byte-identical.
	reader := NewBlockCompiledRouting(NewRouting(topo, RandomK{}, 4, 42), opts)
	defer reader.Close()
	for g := 0; g < reader.NumSegments(); g++ {
		seg, err := reader.Segment(g)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInt32(seg.links, refSegs[g]) {
			t.Errorf("persisted segment %d differs from reference compile", g)
		}
		reader.Release(seg)
	}
}
