package core

import (
	"fmt"

	"xgftsim/internal/topology"
)

// RepairedRouting is a Routing evaluated against a degraded fabric:
// whenever a pair's chosen path crosses a failed link, the scheme
// re-selects within its own policy, so the emitted path set never
// crosses a dead link and is non-empty whenever the pair is still
// connected by some shortest path. Pairs with no surviving shortest
// path are reported (Disconnected, DisconnectedPairs) instead of being
// routed over broken links. Like Routing, a RepairedRouting is a few
// words, derives everything on demand, and is safe for concurrent use
// once the FaultSet is frozen.
//
// Each scheme repairs by walking its own preference order over the
// pair's X path indices and keeping the first surviving ones:
//
//   - d-mod-k / s-mod-k fall back to the nearest surviving index after
//     their canonical one (wrapping modulo X);
//   - shift-1 slides its K-wide window past dead indices — the kept
//     indices are the first K alive in (i0, i0+1, ...) order;
//   - disjoint walks its fork-maximizing enumeration and re-strides to
//     the next fork whenever an index is dead;
//   - random / random-single redraw from the pair's deterministic RNG
//     stream (a fresh repair substream, so results do not depend on how
//     much randomness the healthy selection consumed);
//   - umulti keeps every surviving path.
//
// At K at or above the number of surviving paths every multi-path
// scheme therefore degrades to UMULTI over the surviving paths.
type RepairedRouting struct {
	base   *Routing
	faults *topology.FaultSet
}

// repairStreamSalt decorrelates the repair RNG substream from the
// healthy per-pair selection stream.
const repairStreamSalt = 0x5eaf00d

// Repair binds the routing to a degraded fabric. The FaultSet must be
// over the routing's topology and must not be mutated afterwards.
// Custom selectors outside this package are rejected: repair re-walks
// each scheme's preference order, which only the package schemes
// define.
func (r *Routing) Repair(f *topology.FaultSet) (*RepairedRouting, error) {
	if f == nil {
		return nil, fmt.Errorf("core: Repair requires a fault set (use an empty FaultSet for a healthy fabric)")
	}
	if f.Topology() != r.topo {
		return nil, fmt.Errorf("core: fault set is over %s, routing is over %s", f.Topology(), r.topo)
	}
	switch r.sel.(type) {
	case DModK, SModK, RandomSingle, Shift1, Disjoint, RandomK, UMulti:
	default:
		return nil, fmt.Errorf("core: cannot repair custom scheme %q (no repair preference order defined)", r.sel.Name())
	}
	return &RepairedRouting{base: r, faults: f}, nil
}

// MustRepair is Repair but panics on error; for tests and examples.
func (r *Routing) MustRepair(f *topology.FaultSet) *RepairedRouting {
	rr, err := r.Repair(f)
	if err != nil {
		panic(err)
	}
	return rr
}

// Base returns the healthy routing the repair wraps.
func (rr *RepairedRouting) Base() *Routing { return rr.base }

// Faults returns the fault set the routing is repaired against.
func (rr *RepairedRouting) Faults() *topology.FaultSet { return rr.faults }

// Topology returns the underlying topology.
func (rr *RepairedRouting) Topology() *topology.Topology { return rr.base.topo }

// String identifies the repaired routing, e.g.
// "disjoint(K=4)/faults(12/1280 links down)".
func (rr *RepairedRouting) String() string {
	return fmt.Sprintf("%s/%s", rr.base, rr.faults)
}

// Disconnected reports whether the pair has no surviving shortest path:
// its traffic cannot be delivered by any minimal oblivious routing and
// is reported rather than routed.
func (rr *RepairedRouting) Disconnected(src, dst int) bool {
	return !rr.faults.Connected(src, dst)
}

// DisconnectedPairs enumerates every ordered SD pair with no surviving
// shortest path.
func (rr *RepairedRouting) DisconnectedPairs() [][2]int {
	n := rr.base.topo.NumProcessors()
	var out [][2]int
	if rr.faults.Empty() {
		return out
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src != dst && !rr.faults.Connected(src, dst) {
				out = append(out, [2]int{src, dst})
			}
		}
	}
	return out
}

// AppendPathsScratch appends the repaired path indices for the SD pair
// using the caller's scratch RNG state; the degraded analogue of
// Routing.AppendPathsScratch, and like it deterministic in
// (seed, src, dst) and allocation-free on the hot path.
func (rr *RepairedRouting) AppendPathsScratch(ps *PathScratch, buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	if rr.faults.Empty() {
		return rr.base.AppendPathsScratch(ps, buf, src, dst)
	}
	start := len(buf)
	buf = rr.base.AppendPathsScratch(ps, buf, src, dst)
	t := rr.base.topo
	k := t.NCALevel(src, dst)
	var up [maxDigits]int
	ok := true
	for _, idx := range buf[start:] {
		if !rr.pathAlive(src, dst, k, idx, &up) {
			ok = false
			break
		}
	}
	if ok {
		return buf // healthy selection survives untouched
	}
	return rr.repairSelect(ps, buf[:start], src, dst, k)
}

// AppendPaths is AppendPathsScratch with throwaway RNG state.
func (rr *RepairedRouting) AppendPaths(buf []int, src, dst int) []int {
	return rr.AppendPathsScratch(NewPathScratch(), buf, src, dst)
}

// Paths returns the repaired path indices in a fresh slice; empty for
// disconnected pairs.
func (rr *RepairedRouting) Paths(src, dst int) []int {
	return rr.AppendPaths(nil, src, dst)
}

// PortRoutes expands the pair's repaired paths into output-port
// sequences for source routing.
func (rr *RepairedRouting) PortRoutes(src, dst int) [][]int {
	idx := rr.Paths(src, dst)
	out := make([][]int, len(idx))
	for i, id := range idx {
		out[i] = PortRoute(rr.base.topo, src, dst, id)
	}
	return out
}

// maxDigits sizes digit scratch buffers (topology caps h at 16).
const maxDigits = 17

// pathAlive decodes idx into scratch and tests it against the faults.
func (rr *RepairedRouting) pathAlive(src, dst, k, idx int, up *[maxDigits]int) bool {
	t := rr.base.topo
	for j := k; j >= 1; j-- {
		up[j-1] = idx % t.W(j)
		idx /= t.W(j)
	}
	return rr.faults.PathAlive(src, dst, up[:k])
}

// repairSelect walks the scheme's preference order over all X indices
// and appends the first surviving ones, up to the scheme's path count.
// One pruned DFS (AlivePathBits) answers every candidate's liveness, so
// the walk costs two instructions per index instead of a decode plus a
// link walk each.
func (rr *RepairedRouting) repairSelect(ps *PathScratch, buf []int, src, dst, k int) []int {
	t := rr.base.topo
	x := t.WProd(k)
	ps.alive = rr.faults.AlivePathBits(src, dst, ps.alive)
	alive := ps.alive
	take := func(order func(c int) int, want int) []int {
		for c := 0; c < x && want > 0; c++ {
			idx := order(c)
			if alive[idx>>6]&(1<<(uint(idx)&63)) != 0 {
				buf = append(buf, idx)
				want--
			}
		}
		return buf
	}
	switch rr.base.sel.(type) {
	case DModK:
		i0 := DModKIndex(t, dst, k)
		return take(func(c int) int { return (i0 + c) % x }, 1)
	case SModK:
		i0 := SModKIndex(t, src, k)
		return take(func(c int) int { return (i0 + c) % x }, 1)
	case Shift1:
		i0 := DModKIndex(t, dst, k)
		return take(func(c int) int { return (i0 + c) % x }, clampK(rr.base.k, x))
	case Disjoint:
		i0 := DModKIndex(t, dst, k)
		offs := ps.disjointOffsets(t, k, x)
		return take(func(c int) int { return (i0 + int(offs[c])) % x }, clampK(rr.base.k, x))
	case UMulti:
		return take(func(c int) int { return c }, x)
	case RandomSingle:
		return take(rr.repairPerm(ps, src, dst, x), 1)
	case RandomK:
		return take(rr.repairPerm(ps, src, dst, x), clampK(rr.base.k, x))
	}
	panic("core: unreachable — Repair validated the scheme") // invariant guard
}

// disjointOffsets returns the cached disjoint preference-order table
// for NCA level k: offs[c] = DisjointOffset(t, k, c). The table only
// depends on (topology, k), not on the pair, so a scratch computes it
// once per level and re-derives it if moved to another topology.
func (ps *PathScratch) disjointOffsets(t *topology.Topology, k, x int) []int32 {
	if ps.djTopo != t {
		ps.djTopo = t
		ps.djOff = [maxDigits][]int32{}
	}
	if ps.djOff[k] == nil {
		offs := make([]int32, x)
		for c := range offs {
			offs[c] = int32(DisjointOffset(t, k, c))
		}
		ps.djOff[k] = offs
	}
	return ps.djOff[k]
}

// repairPerm returns an order function enumerating a deterministic
// random permutation of [0, x), drawn lazily by Fisher-Yates from the
// pair's dedicated repair substream.
func (rr *RepairedRouting) repairPerm(ps *PathScratch, src, dst, x int) func(c int) int {
	r := rr.base
	ps.src.SeedStream(r.seed^repairStreamSalt, int64(src)*int64(r.topo.NumProcessors())+int64(dst))
	perm := make([]int, x)
	for i := range perm {
		perm[i] = i
	}
	drawn := 0
	return func(c int) int {
		for drawn <= c {
			j := drawn + ps.rng.Intn(x-drawn)
			perm[drawn], perm[j] = perm[j], perm[drawn]
			drawn++
		}
		return perm[c]
	}
}

// NumAlivePaths returns the number of surviving shortest paths for the
// pair; the repaired path count is min(scheme count, NumAlivePaths).
func (rr *RepairedRouting) NumAlivePaths(src, dst int) int {
	if src == dst {
		return 0
	}
	return rr.faults.AlivePaths(src, dst)
}
