package core

import (
	"reflect"
	"sort"
	"testing"

	"xgftsim/internal/topology"
)

// repairSchemes covers every repairable scheme; K is a representative
// multi-path budget (ignored by single-path schemes).
func repairSchemes() []Selector {
	return []Selector{DModK{}, SModK{}, RandomSingle{}, Shift1{}, Disjoint{}, RandomK{}, UMulti{}}
}

func repairTopologies() []*topology.Topology {
	return []*topology.Topology{
		topology.MustNew(2, []int{4, 4}, []int{1, 4}),
		topology.MustNew(3, []int{2, 2, 4}, []int{1, 2, 2}),
	}
}

// TestRepairProperty is the central repair invariant, property-tested
// across every scheme, both tree heights and several fault seeds: on a
// degraded fabric the repaired path set (a) never crosses a failed
// link, (b) is non-empty exactly when the pair is still connected,
// (c) never exceeds the scheme's path budget, and (d) is reported as
// disconnected rather than routed when no shortest path survives.
func TestRepairProperty(t *testing.T) {
	for _, tp := range repairTopologies() {
		for _, sel := range repairSchemes() {
			for faultSeed := int64(1); faultSeed <= 3; faultSeed++ {
				f, err := topology.RandomCableFaults(tp, faultSeed, tp.NumCables()/8+1)
				if err != nil {
					t.Fatal(err)
				}
				r := NewRouting(tp, sel, 2, 42)
				rr, err := r.Repair(f)
				if err != nil {
					t.Fatal(err)
				}
				ps := NewPathScratch()
				n := tp.NumProcessors()
				var buf []int
				var linkBuf []topology.LinkID
				for src := 0; src < n; src++ {
					for dst := 0; dst < n; dst++ {
						if src == dst {
							continue
						}
						buf = rr.AppendPathsScratch(ps, buf[:0], src, dst)
						connected := f.Connected(src, dst)
						if connected && len(buf) == 0 {
							t.Fatalf("%s %s seed=%d: connected pair (%d,%d) got no paths", tp, rr, faultSeed, src, dst)
						}
						if !connected {
							if len(buf) != 0 {
								t.Fatalf("%s %s seed=%d: disconnected pair (%d,%d) routed over %v", tp, rr, faultSeed, src, dst, buf)
							}
							if !rr.Disconnected(src, dst) {
								t.Fatalf("%s %s seed=%d: pair (%d,%d) not reported disconnected", tp, rr, faultSeed, src, dst)
							}
							continue
						}
						if want := r.pathCount(tp.NCALevel(src, dst)); len(buf) > want {
							t.Fatalf("%s %s seed=%d: pair (%d,%d) has %d paths, budget %d", tp, rr, faultSeed, src, dst, len(buf), want)
						}
						linkBuf = AppendPathSetLinks(tp, src, dst, buf, linkBuf[:0])
						for _, l := range linkBuf {
							if f.LinkDown(l) {
								t.Fatalf("%s %s seed=%d: pair (%d,%d) path set %v crosses failed link %d",
									tp, rr, faultSeed, src, dst, buf, l)
							}
						}
					}
				}
			}
		}
	}
}

// TestRepairDegradesToUMulti: with K at or above the path count, every
// multi-path scheme's repaired set equals UMULTI over the surviving
// paths (as a set; preference orders differ).
func TestRepairDegradesToUMulti(t *testing.T) {
	for _, tp := range repairTopologies() {
		f, err := topology.RandomCableFaults(tp, 9, tp.NumCables()/8+1)
		if err != nil {
			t.Fatal(err)
		}
		umulti := NewRouting(tp, UMulti{}, 1, 0).MustRepair(f)
		n := tp.NumProcessors()
		for _, sel := range []Selector{Shift1{}, Disjoint{}, RandomK{}} {
			rr := NewRouting(tp, sel, tp.MaxPaths(), 7).MustRepair(f)
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if src == dst {
						continue
					}
					got := append([]int(nil), rr.Paths(src, dst)...)
					want := append([]int(nil), umulti.Paths(src, dst)...)
					sort.Ints(got)
					sort.Ints(want)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s pair (%d,%d): %v != surviving set %v", rr, src, dst, got, want)
					}
					if len(want) != f.AlivePaths(src, dst) {
						t.Fatalf("umulti pair (%d,%d): %d paths, %d alive", src, dst, len(want), f.AlivePaths(src, dst))
					}
				}
			}
		}
	}
}

// TestRepairEmptyFaultsMatchesBase: an empty fault set reproduces the
// base selection bit-identically (including randomized schemes).
func TestRepairEmptyFaultsMatchesBase(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	for _, sel := range repairSchemes() {
		r := NewRouting(tp, sel, 2, 11)
		rr := r.MustRepair(topology.NewFaultSet(tp))
		ps, ps2 := NewPathScratch(), NewPathScratch()
		n := tp.NumProcessors()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				got := rr.AppendPathsScratch(ps, nil, src, dst)
				want := r.AppendPathsScratch(ps2, nil, src, dst)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s pair (%d,%d): repaired %v != base %v", rr, src, dst, got, want)
				}
			}
		}
	}
}

// TestRepairDeterministic: repeated evaluation (fresh scratch each
// time) returns identical path sets, including for randomized schemes
// whose repair draws from a dedicated substream.
func TestRepairDeterministic(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	f, err := topology.RandomCableFaults(tp, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []Selector{RandomSingle{}, RandomK{}} {
		rr := NewRouting(tp, sel, 2, 5).MustRepair(f)
		n := tp.NumProcessors()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				a := rr.AppendPathsScratch(NewPathScratch(), nil, src, dst)
				b := rr.AppendPathsScratch(NewPathScratch(), nil, src, dst)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s pair (%d,%d): %v then %v", rr, src, dst, a, b)
				}
			}
		}
	}
}

// TestRepairValidation: nil fault sets, foreign topologies and custom
// selectors are rejected.
func TestRepairValidation(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	other := topology.MustNew(2, []int{2, 2}, []int{1, 2})
	r := NewRouting(tp, Disjoint{}, 2, 0)
	if _, err := r.Repair(nil); err == nil {
		t.Error("nil fault set accepted")
	}
	if _, err := r.Repair(topology.NewFaultSet(other)); err == nil {
		t.Error("foreign-topology fault set accepted")
	}
	custom := NewRouting(tp, customSelector{}, 2, 0)
	if _, err := custom.Repair(topology.NewFaultSet(tp)); err == nil {
		t.Error("custom selector accepted for repair")
	}
}

type customSelector struct{ UMulti }

func (customSelector) Name() string { return "custom" }

// TestCompileRepairedMatchesLazy: compiled repaired tables are
// bit-identical to lazy repaired evaluation — path indices and link
// expansions — for every scheme on a faulted fabric, including the
// empty-per-pair blocks of disconnected pairs.
func TestCompileRepairedMatchesLazy(t *testing.T) {
	for _, tp := range repairTopologies() {
		f, err := topology.RandomCableFaults(tp, 5, tp.NumCables()/8+1)
		if err != nil {
			t.Fatal(err)
		}
		for _, sel := range repairSchemes() {
			rr := NewRouting(tp, sel, 2, 21).MustRepair(f)
			c, err := CompileRepaired(rr, 0)
			if err != nil {
				t.Fatal(err)
			}
			if c.Repaired() != rr {
				t.Fatal("compiled table lost its repaired source")
			}
			ps := NewPathScratch()
			n := tp.NumProcessors()
			var buf []int
			var linkBuf []topology.LinkID
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					buf = rr.AppendPathsScratch(ps, buf[:0], src, dst)
					idx := c.PathIndices(src, dst)
					if len(idx) != len(buf) {
						t.Fatalf("%s pair (%d,%d): compiled %d paths, lazy %d", rr, src, dst, len(idx), len(buf))
					}
					for i, id := range idx {
						if int(id) != buf[i] {
							t.Fatalf("%s pair (%d,%d): compiled %v, lazy %v", rr, src, dst, idx, buf)
						}
					}
					links, np := c.PairLinks(src, dst)
					if np != len(buf) {
						t.Fatalf("%s pair (%d,%d): PairLinks count %d, lazy %d", rr, src, dst, np, len(buf))
					}
					linkBuf = AppendPathSetLinks(tp, src, dst, buf, linkBuf[:0])
					if len(links) != len(linkBuf) {
						t.Fatalf("%s pair (%d,%d): compiled %d links, lazy %d", rr, src, dst, len(links), len(linkBuf))
					}
					for i, l := range linkBuf {
						if int32(l) != links[i] {
							t.Fatalf("%s pair (%d,%d): compiled link %d = %d, lazy %d", rr, src, dst, i, links[i], l)
						}
					}
				}
			}
		}
	}
}

// TestCompileRepairedEmptyFaults: an empty fault set compiles through
// the healthy path (no repaired source recorded).
func TestCompileRepairedEmptyFaults(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	rr := NewRouting(tp, Disjoint{}, 2, 0).MustRepair(topology.NewFaultSet(tp))
	c, err := CompileRepaired(rr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Repaired() != nil {
		t.Fatal("healthy compile recorded a repaired source")
	}
}

// TestRepairedDisconnectedPairs: DisconnectedPairs agrees with the
// fault set's connectivity oracle.
func TestRepairedDisconnectedPairs(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	f := topology.NewFaultSet(tp)
	leaf := tp.NodeAt(1, 0)
	for p := 0; p < tp.NumParents(leaf); p++ {
		if err := f.FailCable(leaf, p); err != nil {
			t.Fatal(err)
		}
	}
	rr := NewRouting(tp, DModK{}, 1, 0).MustRepair(f)
	pairs := rr.DisconnectedPairs()
	n := tp.NumProcessors()
	want := 2 * 4 * (n - 4) // leaf 0's processors cut off, both directions
	if len(pairs) != want {
		t.Fatalf("%d disconnected pairs, want %d", len(pairs), want)
	}
	for _, p := range pairs {
		if f.Connected(p[0], p[1]) {
			t.Fatalf("pair %v reported disconnected but is connected", p)
		}
	}
}
