package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"xgftsim/internal/topology"
)

// fig3 is the paper's Figure 3 tree: XGFT(3;4,4,4;1,4,2) with 64
// processing nodes and 8 shortest paths between far-apart pairs.
func fig3(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.FromPaper(topology.PaperFigure3Tree)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	trees := []*topology.Topology{
		topology.MustNew(3, []int{4, 4, 4}, []int{1, 4, 2}),
		topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4}),
		topology.MustNew(2, []int{8, 16}, []int{1, 8}),
		topology.MustNew(3, []int{2, 2, 2}, []int{2, 3, 2}),
	}
	for _, tp := range trees {
		for k := 1; k <= tp.H(); k++ {
			x := tp.WProd(k)
			for idx := 0; idx < x; idx++ {
				up := DecodePathIndex(tp, k, idx, nil)
				if len(up) != k {
					t.Fatalf("%s k=%d: decoded %d digits", tp, k, len(up))
				}
				for j := 1; j <= k; j++ {
					if up[j-1] < 0 || up[j-1] >= tp.W(j) {
						t.Fatalf("%s: digit u_%d=%d out of range", tp, j, up[j-1])
					}
				}
				if back := EncodePathIndex(tp, up); back != idx {
					t.Fatalf("%s k=%d: Encode(Decode(%d)) = %d", tp, k, idx, back)
				}
			}
		}
	}
}

func TestDecodeAppendsToBuf(t *testing.T) {
	tp := fig3(t)
	buf := []int{9, 9}
	out := DecodePathIndex(tp, 3, 7, buf)
	if len(out) != 5 || out[0] != 9 || out[1] != 9 {
		t.Fatalf("decode clobbered prefix: %v", out)
	}
}

func TestDecodePanicsOutOfRange(t *testing.T) {
	tp := fig3(t)
	for _, idx := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DecodePathIndex(%d) should panic", idx)
				}
			}()
			DecodePathIndex(tp, 3, idx, nil)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EncodePathIndex with bad digit should panic")
			}
		}()
		EncodePathIndex(tp, []int{0, 4, 0})
	}()
}

// TestPaperFigure3DModK reproduces the paper's worked example: the
// d-mod-k path between SD pair (0, 63) on Figure 3's tree is Path 7.
func TestPaperFigure3DModK(t *testing.T) {
	tp := fig3(t)
	k := tp.NCALevel(0, 63)
	if k != 3 {
		t.Fatalf("NCA(0,63)=%d want 3", k)
	}
	if x := tp.NumPathsBetween(0, 63); x != 8 {
		t.Fatalf("X=%d want 8", x)
	}
	if idx := DModKIndex(tp, 63, k); idx != 7 {
		t.Fatalf("d-mod-k index = %d, want 7", idx)
	}
}

// TestDModKPortRule checks the definition directly: climbing at level
// j-1, d-mod-k must use parent port (dst / Π_{t<j} w_t) mod w_j.
func TestDModKPortRule(t *testing.T) {
	trees := []*topology.Topology{
		topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4}),
		topology.MustNew(3, []int{2, 3, 2}, []int{2, 2, 3}),
	}
	for _, tp := range trees {
		n := tp.NumProcessors()
		for dst := 0; dst < n; dst++ {
			for k := 1; k <= tp.H(); k++ {
				up := DecodePathIndex(tp, k, DModKIndex(tp, dst, k), nil)
				for j := 1; j <= k; j++ {
					want := (dst / tp.WProd(j-1)) % tp.W(j)
					if up[j-1] != want {
						t.Fatalf("%s dst=%d k=%d: u_%d=%d want %d", tp, dst, k, j, up[j-1], want)
					}
				}
			}
		}
	}
}

// TestConsecutiveIndicesForkAtTop pins the canonical enumeration
// property the shift-1 discussion relies on: consecutive path indices
// (no carry) differ only at the top-level choice.
func TestConsecutiveIndicesForkAtTop(t *testing.T) {
	tp := fig3(t)
	k := 3
	for idx := 0; idx+1 < tp.WProd(k); idx++ {
		a := DecodePathIndex(tp, k, idx, nil)
		b := DecodePathIndex(tp, k, idx+1, nil)
		if a[k-1]+1 == b[k-1] { // no carry out of u_k
			if !reflect.DeepEqual(a[:k-1], b[:k-1]) {
				t.Fatalf("indices %d,%d differ below top: %v vs %v", idx, idx+1, a, b)
			}
			if ForkLevel(tp, k, idx, idx+1) != k {
				t.Fatalf("ForkLevel(%d,%d) != %d", idx, idx+1, k)
			}
		}
	}
}

func TestForkLevel(t *testing.T) {
	tp := fig3(t) // w = (1,4,2)
	cases := []struct{ a, b, want int }{
		{7, 7, 4}, // identical: never fork
		{7, 6, 3}, // differ in u_3 only
		{7, 5, 2}, // 7=(0,3,1), 5=(0,2,1): differ in u_2
		{7, 1, 2}, // 1=(0,0,1)
		{0, 1, 3},
	}
	for _, c := range cases {
		if got := ForkLevel(tp, 3, c.a, c.b); got != c.want {
			t.Errorf("ForkLevel(%d,%d)=%d want %d", c.a, c.b, got, c.want)
		}
		if got := ForkLevel(tp, 3, c.b, c.a); got != c.want {
			t.Errorf("ForkLevel(%d,%d)=%d want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
	// Property: paths sharing digits u_1..u_{f-1} and differing at u_f
	// have fork level f; verified exhaustively via digit comparison.
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			da := DecodePathIndex(tp, 3, a, nil)
			db := DecodePathIndex(tp, 3, b, nil)
			want := 4
			for j := 3; j >= 1; j-- {
				if da[j-1] != db[j-1] {
					want = j
				}
			}
			if got := ForkLevel(tp, 3, a, b); got != want {
				t.Fatalf("ForkLevel(%d,%d)=%d want %d", a, b, got, want)
			}
		}
	}
}

// TestForkLevelLinkDisjointness verifies the structural meaning of the
// fork level: two paths of an SD pair share exactly their first f-1 up
// links and last f-1 down links, and are link-disjoint in between.
func TestForkLevelLinkDisjointness(t *testing.T) {
	tp := fig3(t)
	src, dst := 0, 63
	k := tp.NCALevel(src, dst)
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if a == b {
				continue
			}
			f := ForkLevel(tp, k, a, b)
			la := PathLinksForIndex(tp, src, dst, a, nil)
			lb := PathLinksForIndex(tp, src, dst, b, nil)
			shared := make(map[topology.LinkID]bool)
			for _, l := range la {
				shared[l] = true
			}
			nShared := 0
			for _, l := range lb {
				if shared[l] {
					nShared++
				}
			}
			if want := 2 * (f - 1); nShared != want {
				t.Fatalf("paths %d,%d fork=%d: %d shared links, want %d", a, b, f, nShared, want)
			}
		}
	}
}

func TestPortRouteFollowsPath(t *testing.T) {
	trees := []*topology.Topology{
		fig3(t),
		topology.MustNew(3, []int{2, 3, 2}, []int{2, 2, 3}),
		topology.MustNew(2, []int{4, 8}, []int{1, 4}),
	}
	for _, tp := range trees {
		n := tp.NumProcessors()
		if n > 48 {
			n = 48
		}
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					if got := PortRoute(tp, src, dst, 0); got != nil {
						t.Fatalf("self route should be nil, got %v", got)
					}
					continue
				}
				x := tp.NumPathsBetween(src, dst)
				for idx := 0; idx < x; idx++ {
					ports := PortRoute(tp, src, dst, idx)
					k := tp.NCALevel(src, dst)
					if len(ports) != 2*k {
						t.Fatalf("%s (%d->%d idx %d): %d ports want %d", tp, src, dst, idx, len(ports), 2*k)
					}
					// Walk the route hop by hop through PortPeer and
					// compare with PathNodes.
					up := DecodePathIndex(tp, k, idx, nil)
					want := tp.PathNodes(src, dst, up)
					node := tp.Processor(src)
					for i, p := range ports {
						node = tp.PortPeer(node, p)
						if node != want[i+1] {
							t.Fatalf("%s (%d->%d idx %d): hop %d reached %v want %v",
								tp, src, dst, idx, i, tp.LabelOf(node), tp.LabelOf(want[i+1]))
						}
					}
					if tp.ProcessorID(node) != dst {
						t.Fatalf("route did not end at dst")
					}
				}
			}
		}
	}
}

// TestPathLinksForIndexQuick cross-validates the fused link builder
// against decode-then-realize on randomized inputs.
func TestPathLinksForIndexQuick(t *testing.T) {
	tp := topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
	n := tp.NumProcessors()
	f := func(s, d, i uint32) bool {
		src, dst := int(s)%n, int(d)%n
		if src == dst {
			return true
		}
		x := tp.NumPathsBetween(src, dst)
		idx := int(i) % x
		k := tp.NCALevel(src, dst)
		up := DecodePathIndex(tp, k, idx, nil)
		want := tp.PathLinks(src, dst, up)
		got := PathLinksForIndex(tp, src, dst, idx, nil)
		return reflect.DeepEqual(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
