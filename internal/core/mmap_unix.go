//go:build unix

package core

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The mapping survives the
// file descriptor being closed, which is what lets SegmentCache.load
// defer-close immediately.
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: cannot map %d bytes", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping returned by mmapFile.
func munmapFile(b []byte) {
	_ = syscall.Munmap(b)
}
