package core

import (
	"fmt"
	"sync"
	"time"

	"xgftsim/internal/topology"
)

// DefaultSegmentBytes is the target footprint of one compiled routing
// segment when BlockOptions.SegmentBytes is zero. 64 MiB keeps a
// segment comfortably cache- and mmap-friendly while holding enough
// sources that the per-segment bookkeeping (offsets, scheduling) is
// noise against the compile work.
const DefaultSegmentBytes int64 = 64 << 20

// DefaultTableBudget is the resident-memory bound applied to routing
// tables when no explicit budget is configured. It matches
// flow.DefaultCompileBudget (1 GiB): a full CompiledRouting beyond it
// fails to build, which is exactly the regime block compilation exists
// for.
const DefaultTableBudget int64 = 1 << 30

// BlockOptions configures a BlockCompiledRouting.
type BlockOptions struct {
	// SegmentBytes is the target estimated footprint per segment; the
	// block source count is derived from it. 0 means
	// DefaultSegmentBytes. A segment always holds at least one source,
	// so a tiny value degenerates to one-source segments, never an
	// error.
	SegmentBytes int64
	// ResidentBytes bounds the heap bytes of released segments kept
	// resident for reuse. 0 means DefaultTableBudget. Memory-mapped
	// segments do not count against it (the page cache owns them).
	ResidentBytes int64
	// Cache, when non-nil, spills compiled segments to disk and maps
	// them back on later fetches — including across processes, which is
	// what makes repeated sweeps over the same fabric skip compilation
	// entirely.
	Cache *SegmentCache
}

// BlockCompiledRouting is a CompiledRouting that never materializes
// all N² rows at once: the pair matrix is split into source-block CSR
// segments, each compiled on demand (or mapped back from the segment
// cache), handed to the evaluator, and released once the evaluator
// finishes the block. Peak memory is therefore ≈ one segment per
// concurrent walker plus the resident pool, not the full table — the
// difference between ~130 GiB and ~64 MiB on a 34k-endpoint fabric.
//
// The per-pair layout inside a segment is identical to
// CompiledRouting's (same int32 packing, same path-major link order,
// same selector validation), so loads computed from segments are
// bit-identical to both the full table and the lazy evaluator.
//
// Segment and Release are safe for concurrent use; the segments
// themselves are immutable after compile, so any number of goroutines
// may hold disjoint (or even the same) segments. Only healthy routings
// are supported: repaired path sets are fault-dependent, so their
// out-of-core story is the delta overlay, not source blocks.
type BlockCompiledRouting struct {
	r    *Routing
	topo *topology.Topology
	n    int

	blockSrcs   int
	numSegments int
	perSrcBytes int64
	opts        BlockOptions
	key         string

	mu        sync.Mutex
	pool      map[int]*RoutingSegment // released, heap- or mmap-backed
	poolBytes int64
	liveBytes int64 // pooled + checked-out segment bytes
	closed    bool
}

// RoutingSegment is one compiled source block: the CSR rows of every
// pair (src, dst) with src in [SrcLo(), SrcHi()). It is immutable; the
// accessor slices alias the segment and must not be modified. A
// segment is owned by whoever fetched it until returned via
// BlockCompiledRouting.Release.
type RoutingSegment struct {
	index        int
	srcLo, srcHi int
	n            int

	pathOff []int64
	pathIdx []int32
	linkOff []int64
	links   []int32

	mapped []byte // non-nil when backed by a cache mmap
	bytes  int64
}

// PlanBlocks reports how NewBlockCompiledRouting would segment r at
// the given target segment size: sources per segment, segment count,
// and the estimated bytes of one segment. Useful for predicting the
// block regime (cmd/xgftinfo) without building anything.
func PlanBlocks(r *Routing, segmentBytes int64) (blockSrcs, numSegments int, segBytes int64) {
	if segmentBytes <= 0 {
		segmentBytes = DefaultSegmentBytes
	}
	n := r.Topology().NumProcessors()
	per := perSourceBytes(r)
	blockSrcs = int(segmentBytes / per)
	if blockSrcs < 1 {
		blockSrcs = 1
	}
	if blockSrcs > n {
		blockSrcs = n
	}
	numSegments = (n + blockSrcs - 1) / blockSrcs
	return blockSrcs, numSegments, int64(blockSrcs)*per + 16 // +16: offset tails
}

// perSourceBytes is CompiledBytes for a single source row block: every
// source sees the same per-NCA-level pair counts on an XGFT, so the
// estimate is uniform across sources.
func perSourceBytes(r *Routing) int64 {
	t := r.Topology()
	var paths, links int64
	for k := 1; k <= t.H(); k++ {
		pairs := int64(t.ProcessorsPerSubtree(k) - t.ProcessorsPerSubtree(k-1))
		np := int64(r.pathCount(k))
		paths += pairs * np
		links += pairs * np * int64(2*k)
	}
	return 16*int64(t.NumProcessors()) + 4*paths + 4*links
}

// NewBlockCompiledRouting prepares block-compiled access to r. No
// segment is compiled yet — construction is O(1) — so this never fails
// on size: tables far beyond any memory budget are exactly its use
// case. Selector misbehavior (a custom scheme emitting a varying count
// per NCA level) surfaces as an error from Segment, the same contract
// CompileRouting enforces eagerly.
func NewBlockCompiledRouting(r *Routing, opts BlockOptions) *BlockCompiledRouting {
	if r == nil {
		panic("core: NewBlockCompiledRouting requires a routing")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.ResidentBytes <= 0 {
		opts.ResidentBytes = DefaultTableBudget
	}
	t := r.Topology()
	b := &BlockCompiledRouting{
		r:           r,
		topo:        t,
		n:           t.NumProcessors(),
		perSrcBytes: perSourceBytes(r),
		opts:        opts,
		pool:        make(map[int]*RoutingSegment),
	}
	b.blockSrcs, b.numSegments, _ = PlanBlocks(r, opts.SegmentBytes)
	// The cache key pins everything a segment's contents depend on:
	// topology, scheme, path limit, RNG seed, and the source blocking
	// (segment index only means something at a fixed block size). The
	// leading version tag invalidates all files on layout changes.
	b.key = fmt.Sprintf("xgftseg-v1|%s|%s|K=%d|seed=%d|block=%d",
		t, r.Selector().Name(), r.K(), r.Seed(), b.blockSrcs)
	return b
}

// Routing returns the routing the segments are compiled from.
func (b *BlockCompiledRouting) Routing() *Routing { return b.r }

// Topology returns the underlying topology.
func (b *BlockCompiledRouting) Topology() *topology.Topology { return b.topo }

// NumSegments returns the number of source-block segments.
func (b *BlockCompiledRouting) NumSegments() int { return b.numSegments }

// BlockSources returns the number of sources per segment (the last
// segment may hold fewer).
func (b *BlockCompiledRouting) BlockSources() int { return b.blockSrcs }

// SegmentSpan returns segment g's source range [lo, hi).
func (b *BlockCompiledRouting) SegmentSpan(g int) (lo, hi int) {
	if g < 0 || g >= b.numSegments {
		panic(fmt.Sprintf("core: segment %d out of range [0,%d)", g, b.numSegments))
	}
	lo = g * b.blockSrcs
	hi = lo + b.blockSrcs
	if hi > b.n {
		hi = b.n
	}
	return lo, hi
}

// SegmentFor returns the index of the segment holding source src.
func (b *BlockCompiledRouting) SegmentFor(src int) int { return src / b.blockSrcs }

// TotalBytesEstimate is the closed-form footprint the full table would
// need — CompiledBytes of the underlying routing.
func (b *BlockCompiledRouting) TotalBytesEstimate() int64 { return CompiledBytes(b.r) }

// Segment fetches segment g: from the resident pool if a released copy
// is still held, else from the on-disk cache (memory-mapped when the
// platform supports it), else by compiling the block. Ownership
// transfers to the caller until Release.
func (b *BlockCompiledRouting) Segment(g int) (*RoutingSegment, error) {
	lo, hi := b.SegmentSpan(g)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, fmt.Errorf("core: BlockCompiledRouting is closed")
	}
	if s, ok := b.pool[g]; ok {
		delete(b.pool, g)
		b.poolBytes -= s.bytes
		b.mu.Unlock()
		return s, nil
	}
	b.mu.Unlock()
	if b.opts.Cache != nil {
		if s, ok := b.opts.Cache.load(b.key, g, lo, hi, b.n); ok {
			met.segmentsCacheHit.Inc()
			b.noteLive(s.bytes)
			return s, nil
		}
		met.segmentsCacheMiss.Inc()
	}
	s, err := b.compileSegment(g, lo, hi)
	if err != nil {
		return nil, err
	}
	if b.opts.Cache != nil {
		if err := b.opts.Cache.store(b.key, g, s); err == nil {
			met.segmentsCacheWrite.Inc()
		}
		// A failed store (full disk, unwritable dir) only loses the
		// cache benefit; the compiled segment is still good.
	}
	b.noteLive(s.bytes)
	return s, nil
}

// Release returns a segment fetched with Segment. Heap-backed segments
// are kept resident while the pool fits ResidentBytes (so the next
// fetch is free) and dropped to the GC otherwise; mmap-backed segments
// are pooled the same way and unmapped on eviction.
func (b *BlockCompiledRouting) Release(s *RoutingSegment) {
	if s == nil {
		return
	}
	b.mu.Lock()
	if !b.closed && b.pool[s.index] == nil && b.poolBytes+s.bytes <= b.opts.ResidentBytes {
		b.pool[s.index] = s
		b.poolBytes += s.bytes
		b.mu.Unlock()
		return
	}
	b.liveBytes -= s.bytes
	b.mu.Unlock()
	s.drop()
}

// Close evicts the resident pool (unmapping any cached mmaps) and
// rejects further Segment calls. Segments still checked out remain
// valid; releasing them after Close drops them.
func (b *BlockCompiledRouting) Close() {
	b.mu.Lock()
	pool := b.pool
	b.pool = map[int]*RoutingSegment{}
	for _, s := range pool {
		b.liveBytes -= s.bytes
	}
	b.poolBytes = 0
	b.closed = true
	b.mu.Unlock()
	for _, s := range pool {
		s.drop()
	}
}

// noteLive tracks checked-out plus pooled segment bytes and feeds the
// high-water gauge, the number EXPERIMENTS.md's peak-memory appendix
// reads.
func (b *BlockCompiledRouting) noteLive(delta int64) {
	b.mu.Lock()
	b.liveBytes += delta
	live := b.liveBytes
	b.mu.Unlock()
	met.segmentLivePeak.SetMax(live)
}

// ResidentBytes reports the bytes currently held by the released-
// segment pool.
func (b *BlockCompiledRouting) ResidentBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.poolBytes
}

// compileSegment materializes the block [lo, hi) with the same
// offset-prediction + fill + validation scheme as CompileRouting, just
// over local row indices. One goroutine per segment: block-mode
// parallelism comes from walkers compiling disjoint segments, not from
// splitting one segment.
func (b *BlockCompiledRouting) compileSegment(g, lo, hi int) (*RoutingSegment, error) {
	start := time.Now()
	rows := (hi - lo) * b.n
	s := &RoutingSegment{
		index:   g,
		srcLo:   lo,
		srcHi:   hi,
		n:       b.n,
		pathOff: make([]int64, rows+1),
		linkOff: make([]int64, rows+1),
	}
	var nPaths, nLinks int64
	p := 0
	for src := lo; src < hi; src++ {
		for dst := 0; dst < b.n; dst++ {
			s.pathOff[p] = nPaths
			s.linkOff[p] = nLinks
			if src != dst {
				k := b.topo.NCALevel(src, dst)
				np := int64(b.r.pathCount(k))
				nPaths += np
				nLinks += np * int64(2*k)
			}
			p++
		}
	}
	s.pathOff[p] = nPaths
	s.linkOff[p] = nLinks
	s.pathIdx = make([]int32, nPaths)
	s.links = make([]int32, nLinks)

	var pathBuf []int
	var linkBuf []topology.LinkID
	ps := NewPathScratch()
	for src := lo; src < hi; src++ {
		for dst := 0; dst < b.n; dst++ {
			if src == dst {
				continue
			}
			row := (src-lo)*b.n + dst
			pathBuf = b.r.AppendPathsScratch(ps, pathBuf[:0], src, dst)
			if got, want := int64(len(pathBuf)), s.pathOff[row+1]-s.pathOff[row]; got != want {
				return nil, fmt.Errorf("core: selector %s produced %d paths for pair (%d,%d), predicted %d; custom selectors must emit a fixed count per NCA level to be compilable",
					b.r.Selector().Name(), got, src, dst, want)
			}
			po, lp := s.pathOff[row], s.linkOff[row]
			for i, idx := range pathBuf {
				s.pathIdx[po+int64(i)] = int32(idx)
			}
			linkBuf = AppendPathSetLinks(b.topo, src, dst, pathBuf, linkBuf[:0])
			if int64(len(linkBuf)) != s.linkOff[row+1]-s.linkOff[row] {
				return nil, fmt.Errorf("core: pair (%d,%d) expanded to %d links, predicted %d",
					src, dst, len(linkBuf), s.linkOff[row+1]-s.linkOff[row])
			}
			for _, l := range linkBuf {
				s.links[lp] = int32(l)
				lp++
			}
		}
	}
	s.bytes = s.Bytes()
	met.segmentsCompiled.Inc()
	met.segmentCompileNanos.Add(time.Since(start).Nanoseconds())
	return s, nil
}

// Index returns the segment's position in the block sequence.
func (s *RoutingSegment) Index() int { return s.index }

// SrcLo returns the first source the segment covers.
func (s *RoutingSegment) SrcLo() int { return s.srcLo }

// SrcHi returns one past the last source the segment covers.
func (s *RoutingSegment) SrcHi() int { return s.srcHi }

// Bytes returns the segment's array footprint.
func (s *RoutingSegment) Bytes() int64 {
	return 8*int64(len(s.pathOff)+len(s.linkOff)) + 4*int64(len(s.pathIdx)+len(s.links))
}

// Mapped reports whether the segment is backed by a cache mmap rather
// than heap arrays.
func (s *RoutingSegment) Mapped() bool { return s.mapped != nil }

// row indexes the segment-local CSR row of (src, dst), panicking when
// src is outside the segment's span — always a walker bug, never a
// data condition.
func (s *RoutingSegment) row(src, dst int) int {
	if src < s.srcLo || src >= s.srcHi {
		panic(fmt.Sprintf("core: source %d outside segment span [%d,%d)", src, s.srcLo, s.srcHi))
	}
	return (src-s.srcLo)*s.n + dst
}

// PairLinks is CompiledRouting.PairLinks over the segment's rows.
func (s *RoutingSegment) PairLinks(src, dst int) (links []int32, numPaths int) {
	p := s.row(src, dst)
	return s.links[s.linkOff[p]:s.linkOff[p+1]], int(s.pathOff[p+1] - s.pathOff[p])
}

// PairPathLinks is CompiledRouting.PairPathLinks over the segment's
// rows: the same concatenation viewed as numPaths prefix-nested
// fixed-stride path segments.
func (s *RoutingSegment) PairPathLinks(src, dst int) (links []int32, numPaths, stride int) {
	links, numPaths = s.PairLinks(src, dst)
	if numPaths == 0 {
		return links, 0, 0
	}
	return links, numPaths, len(links) / numPaths
}

// PathIndices returns the pair's canonical path indices.
func (s *RoutingSegment) PathIndices(src, dst int) []int32 {
	p := s.row(src, dst)
	return s.pathIdx[s.pathOff[p]:s.pathOff[p+1]]
}

// drop releases the segment's backing store: heap segments go to the
// GC, mapped segments are unmapped (after which the slices must not be
// touched — drop is only called once no owner remains).
func (s *RoutingSegment) drop() {
	if s.mapped != nil {
		m := s.mapped
		s.mapped = nil
		s.pathOff, s.linkOff, s.pathIdx, s.links = nil, nil, nil, nil
		munmapFile(m)
	}
}
