package core

import (
	"fmt"
	"sync"
	"time"

	"xgftsim/internal/topology"
)

// DefaultSegmentBytes is the target footprint of one compiled routing
// segment when BlockOptions.SegmentBytes is zero. 64 MiB keeps a
// segment comfortably cache- and mmap-friendly while holding enough
// sources that the per-segment bookkeeping (offsets, scheduling) is
// noise against the compile work.
const DefaultSegmentBytes int64 = 64 << 20

// DefaultTableBudget is the resident-memory bound applied to routing
// tables when no explicit budget is configured. It matches
// flow.DefaultCompileBudget (1 GiB): a full CompiledRouting beyond it
// fails to build, which is exactly the regime block compilation exists
// for.
const DefaultTableBudget int64 = 1 << 30

// BlockOptions configures a BlockCompiledRouting.
type BlockOptions struct {
	// SegmentBytes is the target estimated footprint per segment; the
	// block source count is derived from it. 0 means
	// DefaultSegmentBytes. A segment always holds at least one source,
	// so a tiny value degenerates to one-source segments, never an
	// error.
	SegmentBytes int64
	// ResidentBytes bounds the heap bytes of released segments kept
	// resident for reuse. 0 means DefaultTableBudget. Memory-mapped
	// segments do not count against it (the page cache owns them).
	ResidentBytes int64
	// Cache, when non-nil, spills compiled segments to disk and maps
	// them back on later fetches — including across processes, which is
	// what makes repeated sweeps over the same fabric skip compilation
	// entirely.
	Cache *SegmentCache
	// Prefetch enables the async compile pipeline: when > 0, Prefetch(g)
	// hands segment materialization to a bounded worker pool (at most
	// Prefetch workers, capped at maxPrefetchWorkers) so compile overlaps
	// the caller's evaluation. 0 makes Prefetch a no-op. Admission is
	// budget-aware: a prefetch whose estimated bytes would push pooled +
	// in-flight segments past ResidentBytes is dropped (counted by
	// core.prefetch_stalls) rather than queued, so prefetching never
	// inflates peak memory beyond the resident budget.
	Prefetch int
	// DeltaBase, when non-nil, compiles this table's segments as deltas
	// against the base table's same-index segments: pairs whose rows
	// match the base are shared, only changed rows are stored and
	// patched in (see SegmentDelta). The base must cover the same
	// topology and source blocking; NewBlockCompiledRouting panics
	// otherwise. Cached records use the delta format (xgftsegd-v1).
	DeltaBase *BlockCompiledRouting
}

// BlockCompiledRouting is a CompiledRouting that never materializes
// all N² rows at once: the pair matrix is split into source-block CSR
// segments, each compiled on demand (or mapped back from the segment
// cache), handed to the evaluator, and released once the evaluator
// finishes the block. Peak memory is therefore ≈ one segment per
// concurrent walker plus the resident pool, not the full table — the
// difference between ~130 GiB and ~64 MiB on a 34k-endpoint fabric.
//
// The per-pair layout inside a segment is identical to
// CompiledRouting's (same int32 packing, same path-major link order,
// same selector validation), so loads computed from segments are
// bit-identical to both the full table and the lazy evaluator.
//
// Segment and Release are safe for concurrent use; the segments
// themselves are immutable after compile, so any number of goroutines
// may hold disjoint (or even the same) segments. Only healthy routings
// are supported: repaired path sets are fault-dependent, so their
// out-of-core story is the delta overlay, not source blocks.
type BlockCompiledRouting struct {
	r    *Routing
	topo *topology.Topology
	n    int

	blockSrcs   int
	numSegments int
	perSrcBytes int64
	opts        BlockOptions
	key         string

	mu        sync.Mutex
	pool      map[int]*RoutingSegment // released, heap- or mmap-backed
	poolBytes int64
	liveBytes int64 // pooled + checked-out segment bytes
	closed    bool

	// Async prefetch state (see prefetch.go). inflightBytes counts the
	// estimated footprint of admitted-but-unfinished prefetches, charged
	// against ResidentBytes alongside poolBytes.
	inflight      map[int]*prefetchEntry
	inflightBytes int64
	prefStarted   bool
	prefCh        chan int
	prefStop      chan struct{}
	prefWG        sync.WaitGroup

	delta *deltaPlan // non-nil when opts.DeltaBase is set
}

// RoutingSegment is one compiled source block: the CSR rows of every
// pair (src, dst) with src in [SrcLo(), SrcHi()). It is immutable; the
// accessor slices alias the segment and must not be modified. A
// segment is owned by whoever fetched it until returned via
// BlockCompiledRouting.Release.
type RoutingSegment struct {
	index        int
	srcLo, srcHi int
	n            int

	pathOff []int64
	pathIdx []int32
	linkOff []int64
	links   []int32

	mapped []byte // non-nil when backed by a cache mmap
	bytes  int64
}

// PlanBlocks reports how NewBlockCompiledRouting would segment r at
// the given target segment size: sources per segment, segment count,
// and the estimated bytes of one segment. Useful for predicting the
// block regime (cmd/xgftinfo) without building anything.
func PlanBlocks(r *Routing, segmentBytes int64) (blockSrcs, numSegments int, segBytes int64) {
	if segmentBytes <= 0 {
		segmentBytes = DefaultSegmentBytes
	}
	n := r.Topology().NumProcessors()
	per := perSourceBytes(r)
	blockSrcs = int(segmentBytes / per)
	if blockSrcs < 1 {
		blockSrcs = 1
	}
	if blockSrcs > n {
		blockSrcs = n
	}
	numSegments = (n + blockSrcs - 1) / blockSrcs
	return blockSrcs, numSegments, int64(blockSrcs)*per + 16 // +16: offset tails
}

// perSourceBytes is CompiledBytes for a single source row block: every
// source sees the same per-NCA-level pair counts on an XGFT, so the
// estimate is uniform across sources.
func perSourceBytes(r *Routing) int64 {
	t := r.Topology()
	var paths, links int64
	for k := 1; k <= t.H(); k++ {
		pairs := int64(t.ProcessorsPerSubtree(k) - t.ProcessorsPerSubtree(k-1))
		np := int64(r.pathCount(k))
		paths += pairs * np
		links += pairs * np * int64(2*k)
	}
	return 16*int64(t.NumProcessors()) + 4*paths + 4*links
}

// NewBlockCompiledRouting prepares block-compiled access to r. No
// segment is compiled yet — construction is O(1) — so this never fails
// on size: tables far beyond any memory budget are exactly its use
// case. Selector misbehavior (a custom scheme emitting a varying count
// per NCA level) surfaces as an error from Segment, the same contract
// CompileRouting enforces eagerly.
func NewBlockCompiledRouting(r *Routing, opts BlockOptions) *BlockCompiledRouting {
	if r == nil {
		panic("core: NewBlockCompiledRouting requires a routing")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.ResidentBytes <= 0 {
		opts.ResidentBytes = DefaultTableBudget
	}
	t := r.Topology()
	b := &BlockCompiledRouting{
		r:           r,
		topo:        t,
		n:           t.NumProcessors(),
		perSrcBytes: perSourceBytes(r),
		opts:        opts,
		pool:        make(map[int]*RoutingSegment),
		inflight:    make(map[int]*prefetchEntry),
	}
	b.blockSrcs, b.numSegments, _ = PlanBlocks(r, opts.SegmentBytes)
	// The cache key pins everything a segment's contents depend on:
	// topology, scheme, path limit, RNG seed, and the source blocking
	// (segment index only means something at a fixed block size). The
	// leading version tag invalidates all files on layout changes.
	b.key = fmt.Sprintf("xgftseg-v1|%s|%s|K=%d|seed=%d|block=%d",
		t, r.Selector().Name(), r.K(), r.Seed(), b.blockSrcs)
	if opts.DeltaBase != nil {
		b.delta = newDeltaPlan(opts.DeltaBase, b)
	}
	return b
}

// Routing returns the routing the segments are compiled from.
func (b *BlockCompiledRouting) Routing() *Routing { return b.r }

// Topology returns the underlying topology.
func (b *BlockCompiledRouting) Topology() *topology.Topology { return b.topo }

// NumSegments returns the number of source-block segments.
func (b *BlockCompiledRouting) NumSegments() int { return b.numSegments }

// BlockSources returns the number of sources per segment (the last
// segment may hold fewer).
func (b *BlockCompiledRouting) BlockSources() int { return b.blockSrcs }

// SegmentSpan returns segment g's source range [lo, hi).
func (b *BlockCompiledRouting) SegmentSpan(g int) (lo, hi int) {
	if g < 0 || g >= b.numSegments {
		panic(fmt.Sprintf("core: segment %d out of range [0,%d)", g, b.numSegments))
	}
	lo = g * b.blockSrcs
	hi = lo + b.blockSrcs
	if hi > b.n {
		hi = b.n
	}
	return lo, hi
}

// SegmentFor returns the index of the segment holding source src.
func (b *BlockCompiledRouting) SegmentFor(src int) int { return src / b.blockSrcs }

// PrefetchDepth reports how many segments ahead of its walk an
// evaluator should issue Prefetch calls — the configured pipeline
// depth, 0 when prefetching is disabled.
func (b *BlockCompiledRouting) PrefetchDepth() int {
	if b.opts.Prefetch <= 0 {
		return 0
	}
	return b.opts.Prefetch
}

// TotalBytesEstimate is the closed-form footprint the full table would
// need — CompiledBytes of the underlying routing.
func (b *BlockCompiledRouting) TotalBytesEstimate() int64 { return CompiledBytes(b.r) }

// Segment fetches segment g: from the resident pool if a released copy
// is still held, by claiming an in-flight prefetch's result, else from
// the on-disk cache (memory-mapped when the platform supports it), else
// by compiling the block. Ownership transfers to the caller until
// Release.
func (b *BlockCompiledRouting) Segment(g int) (*RoutingSegment, error) {
	lo, hi := b.SegmentSpan(g)
	for {
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return nil, fmt.Errorf("core: BlockCompiledRouting is closed")
		}
		if s, ok := b.pool[g]; ok {
			delete(b.pool, g)
			b.poolBytes -= s.bytes
			b.mu.Unlock()
			return s, nil
		}
		e := b.inflight[g]
		b.mu.Unlock()
		if e == nil {
			break
		}
		// A prefetch worker is materializing this segment; wait for it.
		// Successful deposits land in the pool before done closes, so
		// the next loop pass claims them; a failed prefetch leaves
		// neither pool entry nor inflight entry and the loop falls
		// through to the synchronous path (which surfaces the error).
		<-e.done
	}
	s, err := b.materialize(g, lo, hi)
	if err != nil {
		return nil, err
	}
	b.noteLive(s.bytes)
	return s, nil
}

// materialize produces segment g by cache load or compile — the shared
// miss path of Segment and the prefetch workers.
func (b *BlockCompiledRouting) materialize(g, lo, hi int) (*RoutingSegment, error) {
	if b.opts.Cache != nil {
		if s, ok := b.loadCached(g, lo, hi); ok {
			met.segmentsCacheHit.Inc()
			return s, nil
		}
		met.segmentsCacheMiss.Inc()
	}
	s, err := b.compileSegment(g, lo, hi)
	if err != nil {
		return nil, err
	}
	if b.opts.Cache != nil {
		if err := b.storeCached(g, s); err == nil {
			met.segmentsCacheWrite.Inc()
		}
		// A failed store (full disk, unwritable dir) only loses the
		// cache benefit; the compiled segment is still good.
	}
	return s, nil
}

// loadCached fetches segment g from the on-disk cache: the delta record
// (patched onto the base) when this table compiles against a DeltaBase,
// the full record otherwise.
func (b *BlockCompiledRouting) loadCached(g, lo, hi int) (*RoutingSegment, bool) {
	if b.delta != nil {
		return b.loadDeltaCached(g, lo, hi)
	}
	return b.opts.Cache.load(b.key, g, lo, hi, b.n)
}

// storeCached persists segment g — delta-encoded for delta tables.
func (b *BlockCompiledRouting) storeCached(g int, s *RoutingSegment) error {
	if b.delta != nil {
		return b.storeDeltaCached(g, s)
	}
	return b.opts.Cache.store(b.key, g, s)
}

// Release returns a segment fetched with Segment. Heap-backed segments
// are kept resident while the pool fits ResidentBytes (so the next
// fetch is free) and dropped to the GC otherwise; mmap-backed segments
// are pooled the same way and unmapped on eviction.
func (b *BlockCompiledRouting) Release(s *RoutingSegment) {
	if s == nil {
		return
	}
	b.mu.Lock()
	if !b.closed && b.pool[s.index] == nil && b.poolBytes+s.bytes <= b.opts.ResidentBytes {
		b.pool[s.index] = s
		b.poolBytes += s.bytes
		b.mu.Unlock()
		return
	}
	b.liveBytes -= s.bytes
	b.mu.Unlock()
	s.drop()
}

// Close stops the prefetch workers, evicts the resident pool
// (unmapping any cached mmaps) and rejects further Segment calls.
// Segments still checked out remain valid; releasing them after Close
// drops them.
func (b *BlockCompiledRouting) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	started := b.prefStarted
	b.mu.Unlock()
	if started {
		close(b.prefStop)
		b.prefWG.Wait()
	}
	b.mu.Lock()
	// Wake any Segment call still waiting on a prefetch that will never
	// finish (enqueued but unclaimed when the workers exited); the
	// waiter re-checks and sees closed.
	for g, e := range b.inflight {
		delete(b.inflight, g)
		close(e.done)
	}
	b.inflightBytes = 0
	pool := b.pool
	b.pool = map[int]*RoutingSegment{}
	for _, s := range pool {
		b.liveBytes -= s.bytes
	}
	b.poolBytes = 0
	b.mu.Unlock()
	for _, s := range pool {
		s.drop()
	}
}

// noteLive tracks checked-out plus pooled segment bytes and feeds the
// high-water gauge, the number EXPERIMENTS.md's peak-memory appendix
// reads.
func (b *BlockCompiledRouting) noteLive(delta int64) {
	b.mu.Lock()
	b.liveBytes += delta
	live := b.liveBytes
	b.mu.Unlock()
	met.segmentLivePeak.SetMax(live)
}

// ResidentBytes reports the bytes currently held by the released-
// segment pool.
func (b *BlockCompiledRouting) ResidentBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.poolBytes
}

// compileSegment materializes the block [lo, hi) with the same
// offsets, packing and validation contract as CompileRouting, but
// through the interval-structured fast fill (see blockfill.go): the
// per-pair NCALevel/Select/AppendPathSetLinks loop is replaced by a
// constant-NCA-interval walk with closed-form index generation for the
// built-in deterministic selectors and separable link expansion. One
// goroutine per segment: block-mode parallelism comes from walkers (or
// prefetch workers) compiling disjoint segments, not from splitting
// one segment.
func (b *BlockCompiledRouting) compileSegment(g, lo, hi int) (*RoutingSegment, error) {
	if b.delta != nil {
		return b.compileSegmentDelta(g, lo, hi)
	}
	s, _, err := b.fillSegment(g, lo, hi, nil, nil)
	return s, err
}

// fillSegment allocates and fills one segment; baseSeg/shared, when
// non-nil, enable the delta fast path (shared levels copy from the
// base). The returned filler carries fill statistics for the caller's
// metrics.
func (b *BlockCompiledRouting) fillSegment(g, lo, hi int, baseSeg *RoutingSegment, shared []bool) (*RoutingSegment, *segFiller, error) {
	start := time.Now()
	rows := (hi - lo) * b.n
	f := newSegFiller(b.r)
	f.base, f.shared = baseSeg, shared
	perPaths, perLinks := f.perSourceCounts()
	s := &RoutingSegment{
		index:   g,
		srcLo:   lo,
		srcHi:   hi,
		n:       b.n,
		pathOff: make([]int64, rows+1),
		linkOff: make([]int64, rows+1),
		pathIdx: make([]int32, int64(hi-lo)*perPaths),
		links:   make([]int32, int64(hi-lo)*perLinks),
	}
	if err := f.fill(s, lo, hi); err != nil {
		return nil, nil, err
	}
	s.bytes = s.Bytes()
	met.segmentsCompiled.Inc()
	met.segmentCompileNanos.Add(time.Since(start).Nanoseconds())
	return s, f, nil
}

// Index returns the segment's position in the block sequence.
func (s *RoutingSegment) Index() int { return s.index }

// SrcLo returns the first source the segment covers.
func (s *RoutingSegment) SrcLo() int { return s.srcLo }

// SrcHi returns one past the last source the segment covers.
func (s *RoutingSegment) SrcHi() int { return s.srcHi }

// Bytes returns the segment's array footprint.
func (s *RoutingSegment) Bytes() int64 {
	return 8*int64(len(s.pathOff)+len(s.linkOff)) + 4*int64(len(s.pathIdx)+len(s.links))
}

// Mapped reports whether the segment is backed by a cache mmap rather
// than heap arrays.
func (s *RoutingSegment) Mapped() bool { return s.mapped != nil }

// row indexes the segment-local CSR row of (src, dst), panicking when
// src is outside the segment's span — always a walker bug, never a
// data condition.
func (s *RoutingSegment) row(src, dst int) int {
	if src < s.srcLo || src >= s.srcHi {
		panic(fmt.Sprintf("core: source %d outside segment span [%d,%d)", src, s.srcLo, s.srcHi))
	}
	return (src-s.srcLo)*s.n + dst
}

// PairLinks is CompiledRouting.PairLinks over the segment's rows.
func (s *RoutingSegment) PairLinks(src, dst int) (links []int32, numPaths int) {
	p := s.row(src, dst)
	return s.links[s.linkOff[p]:s.linkOff[p+1]], int(s.pathOff[p+1] - s.pathOff[p])
}

// PairPathLinks is CompiledRouting.PairPathLinks over the segment's
// rows: the same concatenation viewed as numPaths prefix-nested
// fixed-stride path segments.
func (s *RoutingSegment) PairPathLinks(src, dst int) (links []int32, numPaths, stride int) {
	links, numPaths = s.PairLinks(src, dst)
	if numPaths == 0 {
		return links, 0, 0
	}
	return links, numPaths, len(links) / numPaths
}

// PathIndices returns the pair's canonical path indices.
func (s *RoutingSegment) PathIndices(src, dst int) []int32 {
	p := s.row(src, dst)
	return s.pathIdx[s.pathOff[p]:s.pathOff[p+1]]
}

// drop releases the segment's backing store: heap segments go to the
// GC, mapped segments are unmapped (after which the slices must not be
// touched — drop is only called once no owner remains).
func (s *RoutingSegment) drop() {
	if s.mapped != nil {
		m := s.mapped
		s.mapped = nil
		s.pathOff, s.linkOff, s.pathIdx, s.links = nil, nil, nil, nil
		munmapFile(m)
	}
}
