package lid

import (
	"fmt"
	"math/rand"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
)

// Degraded-fabric LFT synthesis: the subnet-manager view of path-set
// repair. Destination-based forwarding constrains what repair can do —
// a (destination, slot) pair owns one full-height tag shared by every
// source — so the SM re-selects tags within each scheme's preference
// order, keeping only tags whose forced down chain to the destination
// is fully alive, and installs noRoute for any table entry whose
// outgoing link is dead. Sources whose own up side is cut then hit a
// noRoute entry (reported by Walk) instead of being forwarded into a
// dead link.

// DegradedDestinationTags is DestinationTags over a degraded fabric:
// it walks the scheme's preference order across all full-height tags
// and keeps the first k whose down chain to dst survives the faults.
// Fewer than k (or zero) tags are returned when the fabric does not
// offer them — zero means no top-level switch can reach dst at all.
// Source-dependent schemes are rejected as in DestinationTags.
func DegradedDestinationTags(t *topology.Topology, sel core.Selector, dst, k int, rng *rand.Rand, faults *topology.FaultSet) ([]int, error) {
	h := t.H()
	x := t.WProd(h)
	if k < 1 || k > x {
		k = x
	}
	i0 := core.DModKIndex(t, dst, h)
	var tags []int
	take := func(order func(c int) int, want int) {
		for c := 0; c < x && want > 0; c++ {
			tag := order(c)
			if tagDownAlive(t, faults, dst, tag) {
				tags = append(tags, tag)
				want--
			}
		}
	}
	switch sel.(type) {
	case core.DModK:
		take(func(c int) int { return (i0 + c) % x }, 1)
	case core.Shift1:
		take(func(c int) int { return (i0 + c) % x }, k)
	case core.Disjoint:
		take(func(c int) int { return (i0 + core.DisjointOffset(t, h, c)) % x }, k)
	case core.UMulti:
		take(func(c int) int { return c }, x)
	case core.RandomK:
		perm := rng.Perm(x)
		take(func(c int) int { return perm[c] }, k)
	default:
		return nil, fmt.Errorf("lid: scheme %q is source-dependent and cannot be realized with destination-based forwarding tables", sel.Name())
	}
	return tags, nil
}

// tagDownAlive reports whether the forced down chain of a full-height
// tag to destination d crosses no failed link. The chain is the
// reverse of d's up chain through the tag's digits, so it can be
// walked with Parent/DownLink instead of path arithmetic.
func tagDownAlive(t *topology.Topology, faults *topology.FaultSet, d, tag int) bool {
	var up [17]int
	u := core.DecodePathIndex(t, t.H(), tag, up[:0])
	node := t.Processor(d)
	for j := 1; j <= t.H(); j++ {
		if faults.LinkDown(t.DownLink(node, u[j-1])) {
			return false
		}
		node = t.Parent(node, u[j-1])
	}
	return true
}

// BuildDegradedFabric synthesizes the LFTs for a fabric degraded by
// the fault set: tags come from DegradedDestinationTags, and every
// entry whose outgoing link is dead is installed as noRoute, so no
// forwarding entry ever references a dead port (ValidateDegraded
// checks the invariant). Destinations with no surviving down chain get
// no entries at all; UnreachableDestinations reports them.
func BuildDegradedFabric(p *Plan, sel core.Selector, seed int64, faults *topology.FaultSet) (*Fabric, error) {
	if faults == nil {
		return nil, fmt.Errorf("lid: BuildDegradedFabric requires a fault set (use BuildFabric for a healthy fabric)")
	}
	if faults.Topology() != p.topo {
		return nil, fmt.Errorf("lid: fault set is over %s, plan is over %s", faults.Topology(), p.topo)
	}
	if faults.Empty() {
		return BuildFabric(p, sel, seed)
	}
	t := p.topo
	f := &Fabric{
		plan:   p,
		sel:    sel,
		tables: make([][]uint8, t.NumSwitches()),
		tags:   make([][]int, t.NumProcessors()),
	}
	tableLen := p.LIDsPerNode*(t.NumProcessors()+1) + t.NumSwitches()
	for i := range f.tables {
		f.tables[i] = make([]uint8, tableLen)
		for j := range f.tables[i] {
			f.tables[i][j] = noRoute
		}
	}
	for d := 0; d < t.NumProcessors(); d++ {
		tags, err := DegradedDestinationTags(t, sel, d, p.K, stats.Stream(seed, int64(d)), faults)
		if err != nil {
			return nil, err
		}
		f.tags[d] = tags
	}
	numProc := t.NumProcessors()
	for s := 0; s < t.NumSwitches(); s++ {
		node := topology.NodeID(numProc + s)
		lvl, _ := t.LevelIndex(node)
		lb := t.LabelOf(node)
		for d := 0; d < numProc; d++ {
			if len(f.tags[d]) == 0 {
				continue // unreachable destination: all entries noRoute
			}
			port, down := f.portFor(lvl, lb, d, 0)
			for slot := 0; slot < p.LIDsPerNode; slot++ {
				eff := slot
				if eff >= len(f.tags[d]) {
					eff = 0
				}
				if !down {
					port, _ = f.portFor(lvl, lb, d, f.tags[d][eff])
				}
				if faults.LinkDown(outLinkOf(t, node, port)) {
					continue // dead outgoing link: leave noRoute
				}
				f.tables[s][p.LID(d, slot)] = uint8(port)
			}
		}
	}
	return f, nil
}

// UnreachableDestinations lists destinations the degraded synthesis
// found no surviving down chain for: their LIDs have no forwarding
// entries anywhere. Nil on a healthy build.
func (f *Fabric) UnreachableDestinations() []int {
	var out []int
	for d, tags := range f.tags {
		if len(tags) == 0 {
			out = append(out, d)
		}
	}
	return out
}

// outLinkOf maps a switch's output port number to its outgoing
// directed link: ports below W(lvl+1) go up, the rest go down to the
// child whose DownPortTo matches.
func outLinkOf(t *topology.Topology, n topology.NodeID, port int) topology.LinkID {
	lvl, _ := t.LevelIndex(n)
	ups := 0
	if lvl < t.H() {
		ups = t.W(lvl + 1)
	}
	if port < ups {
		return t.UpLink(n, port)
	}
	childUpPort := t.LabelOf(n).Digit(lvl)
	for c := 0; c < t.NumChildren(n); c++ {
		if t.DownPortTo(n, c) == port {
			return t.DownLink(t.Child(n, c), childUpPort)
		}
	}
	panic(fmt.Sprintf("lid: switch %v has no port %d", t.LabelOf(n), port))
}

// ValidateDegraded checks the degraded-synthesis invariant: no
// forwarding entry of any switch references an output port whose
// outgoing link is failed. It returns the first violation found.
func (f *Fabric) ValidateDegraded(faults *topology.FaultSet) error {
	t := f.plan.topo
	numProc := t.NumProcessors()
	for s := range f.tables {
		node := topology.NodeID(numProc + s)
		for lid, port := range f.tables[s] {
			if port == noRoute {
				continue
			}
			if l := outLinkOf(t, node, int(port)); faults.LinkDown(l) {
				return fmt.Errorf("lid: switch %v forwards lid %d over failed link %d (port %d)",
					t.LabelOf(node), lid, l, port)
			}
		}
	}
	return nil
}
