package lid

import (
	"bytes"
	"strings"
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/topology"
)

func buildTestFabric(t *testing.T) (*Plan, *Fabric) {
	t.Helper()
	tp := topology.MustNew(3, []int{2, 2, 4}, []int{1, 2, 2})
	p, err := NewPlan(tp, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := BuildFabric(p, core.Disjoint{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p, f
}

func TestSerializationRoundTrip(t *testing.T) {
	p, f := buildTestFabric(t)
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	if !strings.Contains(buf.String(), "# topology XGFT(3; 2,2,4; 1,2,2) scheme disjoint K 2 lmc 1") {
		t.Fatalf("header missing:\n%s", buf.String()[:120])
	}
	back, err := ParseFabric(p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ForwardingEqual(f, back) {
		t.Fatal("round trip changed forwarding tables")
	}
}

func TestForwardingEqualDetectsDifference(t *testing.T) {
	p, f := buildTestFabric(t)
	g, err := BuildFabric(p, core.Shift1{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ForwardingEqual(f, g) {
		t.Fatal("disjoint and shift-1 fabrics should differ")
	}
	h, err := BuildFabric(p, core.Disjoint{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ForwardingEqual(f, h) {
		t.Fatal("identical builds should be equal")
	}
}

func TestParseFabricErrors(t *testing.T) {
	p, _ := buildTestFabric(t)
	cases := []string{
		"0x0004 1\n",                      // entry before header
		"switch abc\n",                    // bad switch id
		"switch 1 level 0\n",              // a processing node
		"switch 16 level 1\nzz\n",         // malformed entry
		"switch 16 level 1\n0xzz 1\n",     // bad lid
		"switch 16 level 1\n0x0004 -1\n",  // bad port
		"switch 16 level 1\n0x0004 255\n", // reserved port value
		"switch 16 level 1\n0xffff 1\n",   // lid outside tables
	}
	for i, in := range cases {
		if _, err := ParseFabric(p, strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted:\n%s", i, in)
		}
	}
	// Comments and blank lines are fine.
	if _, err := ParseFabric(p, strings.NewReader("# hi\n\nswitch 16 level 1\n0x0004 1\n")); err != nil {
		t.Errorf("benign input rejected: %v", err)
	}
}

func TestStatsAndHistogram(t *testing.T) {
	p, f := buildTestFabric(t)
	st := f.Stats()
	tp := p.Topology()
	if st.Switches != tp.NumSwitches() {
		t.Fatalf("switches %d", st.Switches)
	}
	// Every switch routes every (node, slot) LID: 2^LMC per node.
	want := tp.NumProcessors() * p.LIDsPerNode
	if st.EntriesMin != want || st.EntriesMax != want {
		t.Fatalf("entries min/max %d/%d, want %d", st.EntriesMin, st.EntriesMax, want)
	}
	if st.EntriesTotal != want*st.Switches {
		t.Fatalf("total %d", st.EntriesTotal)
	}
	// Port histogram of a top switch: down ports only, all entries
	// accounted for.
	top := tp.NodeAt(tp.H(), 0)
	hist := f.PortHistogram(top)
	sum := 0
	for _, port := range SortedPorts(hist) {
		if port < 0 || port >= tp.NumPorts(top) {
			t.Fatalf("port %d out of range", port)
		}
		sum += hist[port]
	}
	if sum != want {
		t.Fatalf("histogram sum %d, want %d", sum, want)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PortHistogram on a processor should panic")
			}
		}()
		f.PortHistogram(tp.Processor(0))
	}()
}

// TestParsedFabricForwards: a parsed fabric forwards identically at
// every switch for sampled LIDs.
func TestParsedFabricForwards(t *testing.T) {
	p, f := buildTestFabric(t)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFabric(p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	tp := p.Topology()
	for s := 0; s < tp.NumSwitches(); s++ {
		sw := topology.NodeID(tp.NumProcessors() + s)
		for d := 0; d < tp.NumProcessors(); d++ {
			for slot := 0; slot < p.LIDsPerNode; slot++ {
				lid := p.LID(d, slot)
				if f.Forward(sw, lid) != back.Forward(sw, lid) {
					t.Fatalf("switch %d lid %d: %d vs %d", sw, lid, f.Forward(sw, lid), back.Forward(sw, lid))
				}
			}
		}
	}
}

// TestParsedFabricWalkAndDiversity: a parsed fabric (no tags) still
// supports Walk (trying the source's up ports) and EffectivePaths
// (recovered from table walks), matching the built fabric.
func TestParsedFabricWalkAndDiversity(t *testing.T) {
	p, f := buildTestFabric(t)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFabric(p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	tp := p.Topology()
	n := tp.NumProcessors()
	for src := 0; src < n; src += 3 {
		for dst := 0; dst < n; dst += 5 {
			if src == dst {
				continue
			}
			for slot := 0; slot < p.LIDsPerNode; slot++ {
				a, errA := f.Walk(src, dst, slot)
				b, errB := back.Walk(src, dst, slot)
				if errA != nil || errB != nil {
					t.Fatalf("walk errors: %v / %v", errA, errB)
				}
				if len(a) != len(b) {
					t.Fatalf("(%d,%d,%d): built %d hops, parsed %d", src, dst, slot, len(a)-1, len(b)-1)
				}
			}
			if f.EffectivePaths(src, dst) != back.EffectivePaths(src, dst) {
				t.Fatalf("(%d,%d): diversity %d vs %d", src, dst,
					f.EffectivePaths(src, dst), back.EffectivePaths(src, dst))
			}
		}
	}
}
