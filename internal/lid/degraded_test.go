package lid

import (
	"strings"
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
)

func degradedSchemes() []core.Selector {
	return []core.Selector{core.DModK{}, core.Shift1{}, core.Disjoint{}, core.RandomK{}, core.UMulti{}}
}

// TestDegradedFabricValidates is the central LFT invariant: across
// every realizable scheme, both tree heights and several random fault
// draws, the degraded synthesis never installs a forwarding entry
// whose outgoing link is dead.
func TestDegradedFabricValidates(t *testing.T) {
	topos := []*topology.Topology{
		topology.MustNew(2, []int{4, 4}, []int{1, 4}),
		topology.MustNew(3, []int{2, 2, 4}, []int{1, 2, 2}),
	}
	for _, tp := range topos {
		p, err := NewPlan(tp, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, sel := range degradedSchemes() {
			for seed := int64(1); seed <= 3; seed++ {
				faults, err := topology.RandomCableFaults(tp, seed, tp.NumCables()/8+1)
				if err != nil {
					t.Fatal(err)
				}
				f, err := BuildDegradedFabric(p, sel, 42, faults)
				if err != nil {
					t.Fatal(err)
				}
				if err := f.ValidateDegraded(faults); err != nil {
					t.Fatalf("%s %s seed=%d: %v", tp, sel.Name(), seed, err)
				}
				// Every walk either delivers to the right node or
				// reports a dead end — walkFrom itself fails on
				// misdelivery, so success means correctness.
				n := tp.NumProcessors()
				for src := 0; src < n; src++ {
					for dst := 0; dst < n; dst++ {
						for slot := 0; slot < p.LIDsPerNode; slot++ {
							f.Walk(src, dst, slot)
						}
					}
				}
			}
		}
	}
}

// TestHealthyBuildFailsValidation: the healthy synthesis routes over
// links a fault set kills, so ValidateDegraded rejects it — the
// degraded build is not optional on a degraded fabric.
func TestHealthyBuildFailsValidation(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	p, err := NewPlan(tp, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := BuildFabric(p, core.UMulti{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	faults := topology.NewFaultSet(tp)
	if err := faults.FailCable(tp.NodeAt(1, 0), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.ValidateDegraded(faults); err == nil {
		t.Fatal("healthy fabric passed degraded validation despite a dead cable it routes over")
	}
}

// TestDegradedConnectedPairsStillDeliver: one dead leaf up cable with
// full-diversity tags (UMulti) leaves every pair connected, and at
// least one LID slot walks to each destination.
func TestDegradedConnectedPairsStillDeliver(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	p, err := NewPlan(tp, tp.MaxPaths())
	if err != nil {
		t.Fatal(err)
	}
	faults := topology.NewFaultSet(tp)
	if err := faults.FailCable(tp.NodeAt(1, 0), 0); err != nil {
		t.Fatal(err)
	}
	f, err := BuildDegradedFabric(p, core.UMulti{}, 0, faults)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ValidateDegraded(faults); err != nil {
		t.Fatal(err)
	}
	if unreachable := f.UnreachableDestinations(); unreachable != nil {
		t.Fatalf("unexpected unreachable destinations %v", unreachable)
	}
	n := tp.NumProcessors()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			delivered := false
			for slot := 0; slot < p.LIDsPerNode && !delivered; slot++ {
				if _, err := f.Walk(src, dst, slot); err == nil {
					delivered = true
				}
			}
			if !delivered {
				t.Fatalf("connected pair (%d,%d): no slot delivers", src, dst)
			}
		}
	}
}

// TestDegradedUnreachableDestination: cutting a processor's only cable
// leaves it with no surviving tags — it is reported unreachable, gets
// no forwarding entries, and walks toward it fail cleanly.
func TestDegradedUnreachableDestination(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	p, err := NewPlan(tp, 2)
	if err != nil {
		t.Fatal(err)
	}
	faults := topology.NewFaultSet(tp)
	if err := faults.FailCable(tp.Processor(3), 0); err != nil {
		t.Fatal(err)
	}
	f, err := BuildDegradedFabric(p, core.Disjoint{}, 0, faults)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ValidateDegraded(faults); err != nil {
		t.Fatal(err)
	}
	unreachable := f.UnreachableDestinations()
	if len(unreachable) != 1 || unreachable[0] != 3 {
		t.Fatalf("UnreachableDestinations = %v, want [3]", unreachable)
	}
	if _, err := f.Walk(0, 3, 0); err == nil {
		t.Fatal("walk to unreachable destination succeeded")
	} else if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("walk error %q does not report unreachability", err)
	}
	// Other destinations are unaffected.
	if _, err := f.Walk(8, 0, 0); err != nil {
		t.Fatalf("walk to live destination failed: %v", err)
	}
}

// TestDegradedTagsFilterAndValidate: the tag filter keeps only tags
// whose down chain survives, respects the budget, and rejects
// source-dependent schemes.
func TestDegradedTagsFilterAndValidate(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	faults := topology.NewFaultSet(tp)
	// Kill the down link of top-level port 0 into destination 0's leaf.
	if err := faults.FailCable(tp.NodeAt(1, 0), 0); err != nil {
		t.Fatal(err)
	}
	tags, err := DegradedDestinationTags(tp, core.UMulti{}, 0, 0, stats.Stream(1, 0), faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != tp.MaxPaths()-1 {
		t.Fatalf("%d surviving tags, want %d", len(tags), tp.MaxPaths()-1)
	}
	for _, tag := range tags {
		if !tagDownAlive(tp, faults, 0, tag) {
			t.Fatalf("tag %d kept despite dead down chain", tag)
		}
	}
	// Destination on another leaf is unaffected by the dead cable's
	// down direction only through leaf 0.
	tags, err = DegradedDestinationTags(tp, core.Disjoint{}, 8, 2, stats.Stream(1, 8), faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != 2 {
		t.Fatalf("%d tags for unaffected destination, want 2", len(tags))
	}
	if _, err := DegradedDestinationTags(tp, core.SModK{}, 0, 2, stats.Stream(1, 0), faults); err == nil {
		t.Fatal("s-mod-k accepted for destination-based tables")
	}
}

// TestBuildDegradedFabricValidation: nil fault sets and foreign
// topologies are rejected; an empty fault set delegates to the healthy
// build.
func TestBuildDegradedFabricValidation(t *testing.T) {
	tp := topology.MustNew(2, []int{4, 4}, []int{1, 4})
	other := topology.MustNew(2, []int{2, 2}, []int{1, 2})
	p, err := NewPlan(tp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildDegradedFabric(p, core.Disjoint{}, 0, nil); err == nil {
		t.Error("nil fault set accepted")
	}
	if _, err := BuildDegradedFabric(p, core.Disjoint{}, 0, topology.NewFaultSet(other)); err == nil {
		t.Error("foreign-topology fault set accepted")
	}
	healthy, err := BuildFabric(p, core.Disjoint{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	viaEmpty, err := BuildDegradedFabric(p, core.Disjoint{}, 7, topology.NewFaultSet(tp))
	if err != nil {
		t.Fatal(err)
	}
	n := tp.NumProcessors()
	for d := 0; d < n; d++ {
		a, b := healthy.Tags(d), viaEmpty.Tags(d)
		if len(a) != len(b) {
			t.Fatalf("dst %d: empty-fault tags %v != healthy %v", d, b, a)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("dst %d: empty-fault tags %v != healthy %v", d, b, a)
			}
		}
	}
}
