// Package lid models the InfiniBand realization of limited multi-path
// routing — the resource constraint that motivates the paper. On
// InfiniBand, switches forward by destination address (LID) through
// linear forwarding tables (LFTs); a destination reachable over K
// paths needs K distinct LIDs (assigned via the LMC mechanism as a
// 2^LMC-aligned block), and the unicast LID space holds fewer than 48K
// entries. Unlimited multi-path routing on a TACC-Ranger-scale fabric
// (3456 nodes × 144 paths) would need half a million addresses; this
// package quantifies that wall (Plan), synthesizes the LFTs a subnet
// manager would install for each heuristic (Fabric), and validates
// that distributed per-LID forwarding reproduces the intended paths.
//
// Destination-based forwarding adds one subtlety the paper's abstract
// model elides: a LID's up-ports must be chosen per destination, not
// per SD pair, so each (destination, slot) is assigned a full-height
// path tag and closer sources follow its truncation. Truncation can
// collapse tags onto the same physical path; the disjoint heuristic,
// which varies the lowest-level ports first, retains far more
// effective diversity for nearby pairs than shift-1, which varies the
// top level first (EffectivePaths quantifies this).
package lid

import (
	"fmt"
	"math/rand"

	"xgftsim/internal/core"
	"xgftsim/internal/stats"
	"xgftsim/internal/topology"
)

// MaxUnicastLIDs is the number of usable unicast LIDs on an InfiniBand
// subnet: 16-bit space, 0x0000 reserved, 0xC000..0xFFFF multicast.
const MaxUnicastLIDs = 0xBFFF

// Plan assigns LID blocks to processing nodes for K-path routing.
type Plan struct {
	topo *topology.Topology
	// K is the requested path limit per destination.
	K int
	// LMC is the InfiniBand LID mask control: each node owns a block
	// of 2^LMC consecutive LIDs, the smallest power of two >= K.
	LMC int
	// LIDsPerNode is 2^LMC.
	LIDsPerNode int
	// TotalLIDs counts all assigned LIDs, including one per switch for
	// management traffic.
	TotalLIDs int
}

// NewPlan computes the LID assignment for K-path routing on t. It
// fails when the assignment exceeds the unicast LID space — the
// paper's argument for limiting K.
func NewPlan(t *topology.Topology, k int) (*Plan, error) {
	if k < 1 {
		return nil, fmt.Errorf("lid: K must be >= 1, got %d", k)
	}
	if k > t.MaxPaths() {
		k = t.MaxPaths()
	}
	lmc := 0
	for 1<<lmc < k {
		lmc++
	}
	if lmc > 7 {
		return nil, fmt.Errorf("lid: K=%d needs LMC=%d, but InfiniBand caps LMC at 7 (128 paths)", k, lmc)
	}
	p := &Plan{topo: t, K: k, LMC: lmc, LIDsPerNode: 1 << lmc}
	p.TotalLIDs = t.NumProcessors()*p.LIDsPerNode + t.NumSwitches()
	if p.TotalLIDs > MaxUnicastLIDs {
		return nil, fmt.Errorf("lid: %d LIDs needed (%d nodes x %d + %d switches) exceed the %d-entry unicast space",
			p.TotalLIDs, t.NumProcessors(), p.LIDsPerNode, t.NumSwitches(), MaxUnicastLIDs)
	}
	return p, nil
}

// Topology returns the fabric's topology.
func (p *Plan) Topology() *topology.Topology { return p.topo }

// BaseLID returns the first LID of processing node d's block. LID 0 is
// reserved, so blocks start at 1... aligned to 2^LMC as InfiniBand
// requires.
func (p *Plan) BaseLID(d int) int {
	if d < 0 || d >= p.topo.NumProcessors() {
		panic(fmt.Sprintf("lid: node %d out of range", d))
	}
	return p.LIDsPerNode * (d + 1)
}

// LID returns the address of (destination d, path slot). Slots beyond
// K-1 but below 2^LMC alias slot 0, as unused block entries do on real
// subnets.
func (p *Plan) LID(d, slot int) int {
	if slot < 0 || slot >= p.LIDsPerNode {
		panic(fmt.Sprintf("lid: slot %d out of block [0,%d)", slot, p.LIDsPerNode))
	}
	if slot >= p.K {
		slot = 0
	}
	return p.BaseLID(d) + slot
}

// SwitchLID returns the management LID of the i-th switch (NodeIDs
// after the processing nodes), placed after all node blocks.
func (p *Plan) SwitchLID(i int) int {
	if i < 0 || i >= p.topo.NumSwitches() {
		panic(fmt.Sprintf("lid: switch %d out of range", i))
	}
	return p.LIDsPerNode*(p.topo.NumProcessors()+1) + i
}

// Decode maps a LID back to (destination, slot); ok is false for
// switch/management or unassigned LIDs.
func (p *Plan) Decode(lid int) (d, slot int, ok bool) {
	first := p.LIDsPerNode
	last := p.LIDsPerNode*(p.topo.NumProcessors()+1) - 1
	if lid < first || lid > last {
		return 0, 0, false
	}
	return lid/p.LIDsPerNode - 1, lid % p.LIDsPerNode, true
}

// MaxRealizableK returns the largest K for which NewPlan succeeds on
// t, or 0 if even single-path routing does not fit.
func MaxRealizableK(t *topology.Topology) int {
	best := 0
	for k := 1; k <= t.MaxPaths(); k++ {
		if _, err := NewPlan(t, k); err == nil {
			best = k
		}
	}
	return best
}

// DestinationTags computes the K full-height path tags assigned to
// destination dst under the given scheme: indices into the level-h
// path enumeration whose digit at level j is the up-port every source
// uses when climbing from level j-1. Only destination-based schemes
// can be realized with LFTs; source-dependent schemes (s-mod-k,
// random-single) return an error, which is precisely why d-mod-k
// variants dominate on InfiniBand.
func DestinationTags(t *topology.Topology, sel core.Selector, dst, k int, rng *rand.Rand) ([]int, error) {
	h := t.H()
	x := t.WProd(h)
	if k < 1 || k > x {
		k = x
	}
	i0 := core.DModKIndex(t, dst, h)
	tags := make([]int, 0, k)
	switch sel.(type) {
	case core.DModK:
		tags = append(tags, i0)
	case core.Shift1:
		for c := 0; c < k; c++ {
			tags = append(tags, (i0+c)%x)
		}
	case core.Disjoint:
		for c := 0; c < k; c++ {
			tags = append(tags, (i0+core.DisjointOffset(t, h, c))%x)
		}
	case core.UMulti:
		for c := 0; c < x; c++ {
			tags = append(tags, c)
		}
	case core.RandomK:
		seen := make(map[int]struct{}, k)
		for len(tags) < k {
			v := rng.Intn(x)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			tags = append(tags, v)
		}
	default:
		return nil, fmt.Errorf("lid: scheme %q is source-dependent and cannot be realized with destination-based forwarding tables", sel.Name())
	}
	return tags, nil
}

// Fabric holds the synthesized linear forwarding tables: for every
// switch, the output port of every assigned LID.
type Fabric struct {
	plan *Plan
	sel  core.Selector
	// tables[switchIndex][lid] is the output port, or 0xFF for LIDs a
	// switch never sees valid traffic for (unassigned space).
	tables [][]uint8
	// tags[d] are the full-height path tags of destination d.
	tags [][]int
}

const noRoute = 0xFF

// BuildFabric computes the LFTs a subnet manager would install to
// realize K-path routing under the scheme. seed drives randomized
// schemes.
func BuildFabric(p *Plan, sel core.Selector, seed int64) (*Fabric, error) {
	t := p.topo

	f := &Fabric{
		plan:   p,
		sel:    sel,
		tables: make([][]uint8, t.NumSwitches()),
		tags:   make([][]int, t.NumProcessors()),
	}
	tableLen := p.LIDsPerNode*(t.NumProcessors()+1) + t.NumSwitches()
	for i := range f.tables {
		f.tables[i] = make([]uint8, tableLen)
		for j := range f.tables[i] {
			f.tables[i][j] = noRoute
		}
	}
	for d := 0; d < t.NumProcessors(); d++ {
		tags, err := DestinationTags(t, sel, d, p.K, stats.Stream(seed, int64(d)))
		if err != nil {
			return nil, err
		}
		f.tags[d] = tags
	}
	// Fill every switch's table. A switch at level l forwards LID
	// (d, slot) down when d lies in its subtree (digits above l all
	// match), and otherwise up through the tag's level-(l+1) digit.
	numProc := t.NumProcessors()
	for s := 0; s < t.NumSwitches(); s++ {
		node := topology.NodeID(numProc + s)
		lvl, _ := t.LevelIndex(node)
		lb := t.LabelOf(node)
		for d := 0; d < numProc; d++ {
			port, down := f.portFor(lvl, lb, d, 0)
			for slot := 0; slot < p.LIDsPerNode; slot++ {
				eff := slot
				if eff >= len(f.tags[d]) {
					eff = 0
				}
				if !down {
					port, _ = f.portFor(lvl, lb, d, f.tags[d][eff])
				}
				f.tables[s][p.LID(d, slot)] = uint8(port)
			}
		}
	}
	return f, nil
}

// portFor computes the forwarding decision of a switch (level lvl,
// label lb) for destination d under full-height tag: the down port
// toward d when d is in the subtree, else the up port given by the
// tag's digit at this level.
func (f *Fabric) portFor(lvl int, lb topology.Label, d, tag int) (port int, down bool) {
	t := f.plan.topo
	// d's mixed-radix digits over m_1..m_h, a_1 least significant.
	rest := d
	inSubtree := true
	var dDigit int
	for i := 1; i <= t.H(); i++ {
		digit := rest % t.M(i)
		rest /= t.M(i)
		if i == lvl {
			dDigit = digit
		}
		if i > lvl && digit != lb.Digit(i) {
			inSubtree = false
		}
	}
	if inSubtree {
		if lvl == t.H() {
			return dDigit, true
		}
		return t.W(lvl+1) + dDigit, true
	}
	// Up: digit at level lvl+1 of the tag (u_1 most significant).
	var up [17]int
	core.DecodePathIndex(t, t.H(), tag, up[:0])
	return up[lvl], false
}

// Plan returns the fabric's LID plan.
func (f *Fabric) Plan() *Plan { return f.plan }

// Tags returns the full-height path tags of destination d.
func (f *Fabric) Tags(d int) []int { return f.tags[d] }

// Forward returns the output port switch `sw` (a switch NodeID) uses
// for the given LID, or -1 when the LID has no route.
func (f *Fabric) Forward(sw topology.NodeID, lid int) int {
	t := f.plan.topo
	idx := int(sw) - t.NumProcessors()
	if idx < 0 || idx >= t.NumSwitches() {
		panic(fmt.Sprintf("lid: node %d is not a switch", sw))
	}
	if lid < 0 || lid >= len(f.tables[idx]) {
		return -1
	}
	p := f.tables[idx][lid]
	if p == noRoute {
		return -1
	}
	return int(p)
}

// Walk follows the forwarding tables from processing node src toward
// LID (dst, slot) and returns the nodes visited, ending at dst. On a
// built fabric the first hop uses the source's up port from the tag,
// as the source's channel adapter would be configured; on a parsed
// fabric (no tags) each up port is tried in order and the first that
// delivers wins. It fails if forwarding loops or dead-ends.
func (f *Fabric) Walk(src, dst, slot int) ([]topology.NodeID, error) {
	t := f.plan.topo
	if src == dst {
		return []topology.NodeID{t.Processor(src)}, nil
	}
	lid := f.plan.LID(dst, slot)
	source := t.Processor(src)
	if f.tags != nil {
		if len(f.tags[dst]) == 0 {
			return nil, fmt.Errorf("lid: destination %d is unreachable (no surviving tags)", dst)
		}
		eff := slot
		if eff >= len(f.tags[dst]) {
			eff = 0
		}
		var up [17]int
		core.DecodePathIndex(t, t.H(), f.tags[dst][eff], up[:0])
		return f.walkFrom(source, t.Parent(source, up[0]), dst, lid, slot)
	}
	var lastErr error
	for p := 0; p < t.NumParents(source); p++ {
		path, err := f.walkFrom(source, t.Parent(source, p), dst, lid, slot)
		if err == nil {
			return path, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("lid: no up port of node %d delivers lid %d: %w", src, lid, lastErr)
}

// walkFrom follows tables from the given first switch.
func (f *Fabric) walkFrom(source, first topology.NodeID, dst, lid, slot int) ([]topology.NodeID, error) {
	t := f.plan.topo
	node := first
	path := []topology.NodeID{source, node}
	for hops := 1; ; hops++ {
		if hops > 2*t.H()+1 {
			return path, fmt.Errorf("lid: forwarding loop for dst=%d slot=%d", dst, slot)
		}
		lvl, _ := t.LevelIndex(node)
		if lvl == 0 {
			if t.ProcessorID(node) != dst {
				return path, fmt.Errorf("lid: misdelivered to %d, want %d", t.ProcessorID(node), dst)
			}
			return path, nil
		}
		port := f.Forward(node, lid)
		if port < 0 {
			return path, fmt.Errorf("lid: no route at switch %v for lid %d", t.LabelOf(node), lid)
		}
		node = t.PortPeer(node, port)
		path = append(path, node)
	}
}

// EffectivePaths returns the number of distinct physical paths the
// fabric offers from src to dst: tags whose truncation to the pair's
// NCA subtree differ. Shift-1 loses diversity for nearby pairs because
// consecutive tags differ at the top of the tree; disjoint retains it.
// On a parsed fabric (no tags) the paths are recovered by walking the
// tables for every slot.
func (f *Fabric) EffectivePaths(src, dst int) int {
	if src == dst {
		return 0
	}
	t := f.plan.topo
	distinct := make(map[string]struct{})
	if f.tags == nil {
		for slot := 0; slot < f.plan.LIDsPerNode; slot++ {
			path, err := f.Walk(src, dst, slot)
			if err != nil {
				continue
			}
			distinct[fmt.Sprint(path)] = struct{}{}
		}
		return len(distinct)
	}
	k := t.NCALevel(src, dst)
	var up [17]int
	for _, tag := range f.tags[dst] {
		u := core.DecodePathIndex(t, t.H(), tag, up[:0])
		key := fmt.Sprint(u[:k])
		distinct[key] = struct{}{}
	}
	return len(distinct)
}
