package lid

import (
	"math/rand"
	"reflect"
	"testing"

	"xgftsim/internal/core"
	"xgftsim/internal/topology"
)

func table1Topo(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.MustNew(3, []int{4, 4, 8}, []int{1, 4, 4})
}

func TestPlanBasics(t *testing.T) {
	tp := table1Topo(t)
	p, err := NewPlan(tp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 3 || p.LMC != 2 || p.LIDsPerNode != 4 {
		t.Fatalf("plan %+v", p)
	}
	if want := 128*4 + tp.NumSwitches(); p.TotalLIDs != want {
		t.Fatalf("TotalLIDs=%d want %d", p.TotalLIDs, want)
	}
	// Blocks are aligned and disjoint; decode inverts (within the K
	// live slots — higher slots alias slot 0).
	seen := make(map[int]bool)
	for d := 0; d < tp.NumProcessors(); d++ {
		base := p.BaseLID(d)
		if base%p.LIDsPerNode != 0 {
			t.Fatalf("unaligned base %d", base)
		}
		for slot := 0; slot < p.K; slot++ {
			lid := p.LID(d, slot)
			if lid == 0 || seen[lid] {
				t.Fatalf("lid %d reserved or reused", lid)
			}
			seen[lid] = true
			dd, ss, ok := p.Decode(lid)
			if !ok || dd != d || ss != slot {
				t.Fatalf("Decode(%d) = (%d,%d,%v) want (%d,%d)", lid, dd, ss, ok, d, slot)
			}
		}
	}
	// Slots beyond K alias slot 0.
	if p.LID(5, 3) != p.LID(5, 0) {
		t.Fatal("slot aliasing wrong: slot 3 (>= K=3) must alias slot 0")
	}
	// Switch LIDs sit above all node blocks and stay in range.
	for i := 0; i < tp.NumSwitches(); i++ {
		l := p.SwitchLID(i)
		if _, _, ok := p.Decode(l); ok {
			t.Fatalf("switch lid %d decodes as node", l)
		}
		if l > MaxUnicastLIDs {
			t.Fatalf("switch lid %d out of space", l)
		}
	}
	if _, _, ok := p.Decode(0); ok {
		t.Fatal("LID 0 must not decode")
	}
}

func TestPlanValidation(t *testing.T) {
	tp := table1Topo(t)
	if _, err := NewPlan(tp, 0); err == nil {
		t.Error("K=0 accepted")
	}
	// K beyond MaxPaths clamps.
	p, err := NewPlan(tp, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != tp.MaxPaths() {
		t.Fatalf("K=%d want %d", p.K, tp.MaxPaths())
	}
	// LMC cap: a tree with > 128 paths cannot request them all.
	big := topology.MustNew(3, []int{12, 12, 24}, []int{1, 12, 12}) // X=144
	if _, err := NewPlan(big, 144); err == nil {
		t.Error("K=144 (LMC 8) accepted")
	}
}

// TestRangerScaleWall reproduces the paper's motivating numbers: on
// the 24-port 3-tree (TACC Ranger scale) unlimited multi-path routing
// cannot be addressed, while small K fits comfortably.
func TestRangerScaleWall(t *testing.T) {
	tp := topology.MustNew(3, []int{12, 12, 24}, []int{1, 12, 12})
	if tp.NumProcessors() != 3456 || tp.MaxPaths() != 144 {
		t.Fatal("unexpected Ranger-scale topology")
	}
	for _, k := range []int{1, 2, 4, 8} {
		if _, err := NewPlan(tp, k); err != nil {
			t.Errorf("K=%d should fit: %v", k, err)
		}
	}
	for _, k := range []int{16, 64, 128} {
		if _, err := NewPlan(tp, k); err == nil {
			t.Errorf("K=%d should exceed the LID space", k)
		}
	}
	maxK := MaxRealizableK(tp)
	if maxK < 8 || maxK >= 16 {
		t.Fatalf("MaxRealizableK=%d, want in [8,16)", maxK)
	}
}

func TestDestinationTags(t *testing.T) {
	tp := table1Topo(t)
	rng := rand.New(rand.NewSource(1))
	x := tp.MaxPaths()
	for _, sel := range []core.Selector{core.DModK{}, core.Shift1{}, core.Disjoint{}, core.RandomK{}, core.UMulti{}} {
		for _, k := range []int{1, 2, 5, x} {
			for dst := 0; dst < tp.NumProcessors(); dst += 17 {
				tags, err := DestinationTags(tp, sel, dst, k, rng)
				if err != nil {
					t.Fatalf("%s: %v", sel.Name(), err)
				}
				seen := make(map[int]bool)
				for _, tag := range tags {
					if tag < 0 || tag >= x || seen[tag] {
						t.Fatalf("%s: bad tag %d in %v", sel.Name(), tag, tags)
					}
					seen[tag] = true
				}
				switch sel.(type) {
				case core.DModK:
					if len(tags) != 1 || tags[0] != core.DModKIndex(tp, dst, tp.H()) {
						t.Fatalf("d-mod-k tags %v", tags)
					}
				case core.UMulti:
					if len(tags) != x {
						t.Fatalf("umulti %d tags", len(tags))
					}
				default:
					if len(tags) != k {
						t.Fatalf("%s: %d tags want %d", sel.Name(), len(tags), k)
					}
				}
			}
		}
	}
	for _, sel := range []core.Selector{core.SModK{}, core.RandomSingle{}} {
		if _, err := DestinationTags(tp, sel, 0, 2, rng); err == nil {
			t.Errorf("%s should not be LFT-realizable", sel.Name())
		}
	}
}

// TestFabricWalkReachesDestination: forwarding from every source to
// every (destination, slot) must deliver along a valid shortest path.
func TestFabricWalkReachesDestination(t *testing.T) {
	trees := []*topology.Topology{
		topology.MustNew(3, []int{2, 2, 4}, []int{1, 2, 2}),
		topology.MustNew(2, []int{4, 8}, []int{1, 4}),
	}
	for _, tp := range trees {
		for _, sel := range []core.Selector{core.DModK{}, core.Shift1{}, core.Disjoint{}, core.RandomK{}} {
			p, err := NewPlan(tp, 2)
			if err != nil {
				t.Fatal(err)
			}
			f, err := BuildFabric(p, sel, 7)
			if err != nil {
				t.Fatal(err)
			}
			n := tp.NumProcessors()
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					for slot := 0; slot < p.LIDsPerNode; slot++ {
						path, err := f.Walk(src, dst, slot)
						if err != nil {
							t.Fatalf("%s %s: walk(%d,%d,%d): %v", tp, sel.Name(), src, dst, slot, err)
						}
						if src == dst {
							continue
						}
						k := tp.NCALevel(src, dst)
						if len(path) != 2*k+1 {
							t.Fatalf("%s %s: walk(%d,%d,%d) took %d nodes, want %d (shortest)",
								tp, sel.Name(), src, dst, slot, len(path), 2*k+1)
						}
					}
				}
			}
		}
	}
}

// TestFabricMatchesSelectorAtFullHeight: for SD pairs whose NCA is the
// root level, the LFT walk must realize exactly the selector's paths.
func TestFabricMatchesSelectorAtFullHeight(t *testing.T) {
	tp := topology.MustNew(3, []int{2, 2, 4}, []int{1, 2, 2})
	k := 4 // == MaxPaths
	p, err := NewPlan(tp, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []core.Selector{core.Shift1{}, core.Disjoint{}} {
		f, err := BuildFabric(p, sel, 0)
		if err != nil {
			t.Fatal(err)
		}
		n := tp.NumProcessors()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if tp.NCALevel(src, dst) != tp.H() {
					continue
				}
				want := sel.Select(tp, src, dst, k, nil, nil)
				for slot, idx := range want {
					up := core.DecodePathIndex(tp, tp.H(), idx, nil)
					wantPath := tp.PathNodes(src, dst, up)
					got, err := f.Walk(src, dst, slot)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, wantPath) {
						t.Fatalf("%s (%d,%d,slot %d): walk %v != selector path %v",
							sel.Name(), src, dst, slot, got, wantPath)
					}
				}
			}
		}
	}
}

// TestEffectivePathDiversity: disjoint retains full diversity for
// nearby pairs under LID truncation while shift-1 collapses — the
// ablation described in the package comment.
func TestEffectivePathDiversity(t *testing.T) {
	tp := table1Topo(t) // w=(1,4,4), X=16
	p, err := NewPlan(tp, 4)
	if err != nil {
		t.Fatal(err)
	}
	dj, err := BuildFabric(p, core.Disjoint{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := BuildFabric(p, core.Shift1{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A level-2 pair (same 16-node subtree, different leaf switches)
	// has 4 physical paths. Disjoint's first 4 tags differ in u_1..u_2
	// -> 4 effective paths; shift-1's consecutive tags differ in u_3
	// (above the NCA) -> 1 effective path when the tag block doesn't
	// carry out of u_3 (dst=1 has u_3 = 0, so tags 4..7 share u_2).
	src, dst := 5, 1
	if k := tp.NCALevel(src, dst); k != 2 {
		t.Fatalf("NCA(%d,%d)=%d, want 2", src, dst, k)
	}
	if got := dj.EffectivePaths(src, dst); got != 4 {
		t.Fatalf("disjoint effective paths = %d, want 4", got)
	}
	if got := sh.EffectivePaths(src, dst); got != 1 {
		t.Fatalf("shift-1 effective paths = %d, want 1", got)
	}
	// Far pairs keep all K paths under both schemes.
	far := tp.NumProcessors() - 1
	if dj.EffectivePaths(0, far) != 4 || sh.EffectivePaths(0, far) != 4 {
		t.Fatal("far pair should keep 4 effective paths")
	}
	if dj.EffectivePaths(3, 3) != 0 {
		t.Fatal("self pair effective paths")
	}
}

func TestFabricAccessors(t *testing.T) {
	tp := topology.MustNew(2, []int{2, 4}, []int{1, 2})
	p, err := NewPlan(tp, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := BuildFabric(p, core.Disjoint{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Plan() != p {
		t.Fatal("Plan accessor")
	}
	if len(f.Tags(0)) != 2 {
		t.Fatal("Tags accessor")
	}
	// Unrouted LIDs return -1; switch queries validated.
	sw := tp.NodeAt(1, 0)
	if f.Forward(sw, 0) != -1 {
		t.Fatal("LID 0 should have no route")
	}
	if f.Forward(sw, 1<<20) != -1 {
		t.Fatal("out-of-range LID should have no route")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Forward on a processing node should panic")
			}
		}()
		f.Forward(tp.Processor(0), 4)
	}()
	if _, err := BuildFabric(p, core.SModK{}, 0); err == nil {
		t.Error("source-dependent scheme accepted")
	}
}

func TestPlanPanics(t *testing.T) {
	tp := topology.MustNew(2, []int{2, 4}, []int{1, 2})
	p, err := NewPlan(tp, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []func(){
		func() { p.BaseLID(-1) },
		func() { p.BaseLID(tp.NumProcessors()) },
		func() { p.LID(0, -1) },
		func() { p.LID(0, p.LIDsPerNode) },
		func() { p.SwitchLID(-1) },
		func() { p.SwitchLID(tp.NumSwitches()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
