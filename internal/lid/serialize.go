package lid

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"xgftsim/internal/topology"
)

// Forwarding-table serialization in the spirit of OpenSM's
// `dump_lfts` output: one block per switch listing LID -> port
// mappings. The format round-trips through ParseFabric, so fabrics can
// be diffed, archived, or fed to external tooling.
//
//	# xgftsim LFT dump
//	# topology XGFT(3; 4,4,8; 1,4,4) scheme disjoint K 4 lmc 2
//	switch 128 level 1
//	0x0004 1
//	0x0005 2
//	...
//
// LIDs print in hex as OpenSM does; ports are decimal.

// WriteTo serializes the fabric's forwarding tables.
func (f *Fabric) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	t := f.plan.topo
	if err := count(fmt.Fprintf(bw, "# xgftsim LFT dump\n# topology %s scheme %s K %d lmc %d\n",
		t, f.sel.Name(), f.plan.K, f.plan.LMC)); err != nil {
		return n, err
	}
	numProc := t.NumProcessors()
	for s := range f.tables {
		node := topology.NodeID(numProc + s)
		lvl, _ := t.LevelIndex(node)
		if err := count(fmt.Fprintf(bw, "switch %d level %d\n", int(node), lvl)); err != nil {
			return n, err
		}
		for lid, port := range f.tables[s] {
			if port == noRoute {
				continue
			}
			if err := count(fmt.Fprintf(bw, "0x%04x %d\n", lid, port)); err != nil {
				return n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ParseFabric reads a dump produced by WriteTo back into forwarding
// tables over the given plan. The scheme recorded in the header is
// resolved by name for bookkeeping; table contents come entirely from
// the dump. Tags are not reconstructed, so Walk on a parsed fabric
// resolves the first hop from the first switch's table instead; use
// ForwardingEqual to compare fabrics.
func ParseFabric(p *Plan, r io.Reader) (*Fabric, error) {
	t := p.topo
	f := &Fabric{
		plan:   p,
		tables: make([][]uint8, t.NumSwitches()),
	}
	tableLen := p.LIDsPerNode*(t.NumProcessors()+1) + t.NumSwitches()
	for i := range f.tables {
		f.tables[i] = make([]uint8, tableLen)
		for j := range f.tables[i] {
			f.tables[i][j] = noRoute
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	cur := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(text, "switch "); ok {
			fields := strings.Fields(rest)
			if len(fields) < 1 {
				return nil, fmt.Errorf("lid: line %d: bad switch header %q", line, text)
			}
			node, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("lid: line %d: bad switch id: %v", line, err)
			}
			cur = node - t.NumProcessors()
			if cur < 0 || cur >= t.NumSwitches() {
				return nil, fmt.Errorf("lid: line %d: node %d is not a switch", line, node)
			}
			continue
		}
		if cur < 0 {
			return nil, fmt.Errorf("lid: line %d: entry before any switch header", line)
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("lid: line %d: want \"lid port\", got %q", line, text)
		}
		lid, err := strconv.ParseUint(strings.TrimPrefix(fields[0], "0x"), 16, 32)
		if err != nil {
			return nil, fmt.Errorf("lid: line %d: bad lid: %v", line, err)
		}
		port, err := strconv.Atoi(fields[1])
		if err != nil || port < 0 || port >= noRoute {
			return nil, fmt.Errorf("lid: line %d: bad port %q", line, fields[1])
		}
		if int(lid) >= tableLen {
			return nil, fmt.Errorf("lid: line %d: lid 0x%04x outside the plan's %d-entry tables", line, lid, tableLen)
		}
		f.tables[cur][lid] = uint8(port)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// ForwardingEqual reports whether two fabrics install identical
// forwarding tables (ignoring tag bookkeeping).
func ForwardingEqual(a, b *Fabric) bool {
	if len(a.tables) != len(b.tables) {
		return false
	}
	for i := range a.tables {
		if len(a.tables[i]) != len(b.tables[i]) {
			return false
		}
		for j := range a.tables[i] {
			if a.tables[i][j] != b.tables[i][j] {
				return false
			}
		}
	}
	return true
}

// TableStats summarizes a fabric's forwarding state: per-switch entry
// counts and the total table footprint in entries.
type TableStats struct {
	Switches     int
	EntriesTotal int
	EntriesMin   int
	EntriesMax   int
}

// Stats computes the fabric's table statistics.
func (f *Fabric) Stats() TableStats {
	st := TableStats{Switches: len(f.tables), EntriesMin: -1}
	for _, tbl := range f.tables {
		n := 0
		for _, p := range tbl {
			if p != noRoute {
				n++
			}
		}
		st.EntriesTotal += n
		if st.EntriesMin < 0 || n < st.EntriesMin {
			st.EntriesMin = n
		}
		if n > st.EntriesMax {
			st.EntriesMax = n
		}
	}
	if st.EntriesMin < 0 {
		st.EntriesMin = 0
	}
	return st
}

// PortHistogram returns, for one switch, how many LIDs map to each
// output port — the load-spreading signature of the installed routing.
func (f *Fabric) PortHistogram(sw topology.NodeID) map[int]int {
	t := f.plan.topo
	idx := int(sw) - t.NumProcessors()
	if idx < 0 || idx >= t.NumSwitches() {
		panic(fmt.Sprintf("lid: node %d is not a switch", sw))
	}
	hist := make(map[int]int)
	for _, p := range f.tables[idx] {
		if p != noRoute {
			hist[int(p)]++
		}
	}
	return hist
}

// SortedPorts lists a histogram's ports in ascending order (helper for
// stable textual reports).
func SortedPorts(hist map[int]int) []int {
	ports := make([]int, 0, len(hist))
	for p := range hist {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	return ports
}
