module xgftsim

go 1.22
